"""Unit tests for the MOST-table mapping-scheme family.

Three layers under test:

* the table type — strength lattice, parsing, pair extraction,
  cover/union algebra;
* menu selection and the derivation pass — cheapest covering fence,
  pre/post slot assignment, uncoverable placements rejected;
* the derived schemes — golden equivalence of the QEMU/RISOTTO
  schemes with the historical hardwired placements (kinds, origins,
  and the induced op mapping), plus the expected Theorem-1 verdict
  for every registered (scheme × RMW lowering) pair.
"""

import pytest

from repro.core import mappings as M
from repro.core.events import Arch, Fence
from repro.core.litmus_library import MFENCE, R, W, X86_CORPUS
from repro.core.models import ARM, X86
from repro.core.most import (
    ARM_DMB_MENU,
    MOST,
    NOFENCES_SCHEME,
    OPTIMIZER_ORIGINS,
    ORIGIN_FORMATS,
    POWER_SYNC_MENU,
    QEMU_SCHEME,
    RISOTTO_SCHEME,
    RMO_MOST,
    SC_MOST,
    SCHEME_EXPECTED,
    SCHEME_MAPPINGS,
    SCHEME_RMW_LOWERINGS,
    SCHEMES,
    SOURCE_TABLES,
    Strength,
    TSO_MOST,
    derive_scheme,
    derive_slots,
    expected_verdict,
    known_origins,
    scheme_for_policy,
    scheme_mapping,
    scheme_x86_to_tcg,
)
from repro.core.verifier import check_corpus
from repro.errors import MappingError


# ----------------------------------------------------------------------
# Strength lattice and table algebra
# ----------------------------------------------------------------------
class TestStrength:
    def test_lattice_order(self):
        assert Strength.NONE < Strength.MCA < Strength.STRONG

    def test_symbol_round_trip(self):
        for strength in Strength:
            assert Strength.parse(strength.symbol) is strength

    def test_unknown_symbol_raises(self):
        with pytest.raises(MappingError, match="unknown MOST strength"):
            Strength.parse("X")


class TestMOST:
    def test_parse_tso(self):
        assert TSO_MOST.cell("ld", "ld") is Strength.STRONG
        assert TSO_MOST.cell("ld", "st") is Strength.STRONG
        assert TSO_MOST.cell("st", "ld") is Strength.NONE
        assert TSO_MOST.cell("st", "st") is Strength.MCA

    def test_parse_rejects_short_rows(self):
        with pytest.raises(MappingError, match="row 'st'"):
            MOST.parse("bad", {"ld": "SS", "st": "S"})

    def test_cell_rejects_unknown_access(self):
        with pytest.raises(MappingError, match="accesses must be"):
            TSO_MOST.cell("ld", "rmw")

    def test_required_pairs_row_major(self):
        assert TSO_MOST.required_pairs() == (
            ("ld", "ld"), ("ld", "st"), ("st", "st"))
        assert RMO_MOST.required_pairs() == ()
        assert SC_MOST.required_pairs() == (
            ("ld", "ld"), ("ld", "st"), ("st", "ld"), ("st", "st"))

    def test_covers_is_the_table_order(self):
        assert SC_MOST.covers(TSO_MOST)
        assert TSO_MOST.covers(RMO_MOST)
        assert not TSO_MOST.covers(SC_MOST)
        assert TSO_MOST.covers(TSO_MOST)

    def test_union_is_cellwise_max(self):
        merged = TSO_MOST.union(SOURCE_TABLES["pso"])
        assert merged.cell("st", "st") is Strength.MCA
        assert merged.cell("ld", "ld") is Strength.STRONG
        # Union with SC is SC-shaped.
        assert SC_MOST.union(TSO_MOST).covers(SC_MOST)

    def test_render_is_armor_shaped(self):
        grid = TSO_MOST.render()
        assert "ld:" in grid and "st:" in grid
        assert "-" in grid and "M" in grid and "S" in grid


# ----------------------------------------------------------------------
# Menu selection
# ----------------------------------------------------------------------
class TestMenuSelection:
    def test_single_pair_picks_cheap_narrow_fence(self):
        assert ARM_DMB_MENU.select({("r", "r")}).kind is Fence.FRR
        assert ARM_DMB_MENU.select({("w", "w")}).kind is Fence.FWW

    def test_load_row_picks_frm(self):
        chosen = ARM_DMB_MENU.select({("r", "r"), ("r", "w")})
        assert chosen.kind is Fence.FRM

    def test_all_pairs_pick_full_barrier(self):
        pairs = {(a, b) for a in "rw" for b in "rw"}
        assert ARM_DMB_MENU.select(pairs).kind is Fence.FSC

    def test_uncoverable_pairs_raise(self):
        with pytest.raises(MappingError, match="no fence covering"):
            POWER_SYNC_MENU.select({("r", "x")})

    def test_power_menu_prefers_lwsync(self):
        chosen = POWER_SYNC_MENU.select(
            {("r", "r"), ("r", "w"), ("w", "w")})
        assert chosen.name == "lwsync"
        assert chosen.kind is None  # no TCG spelling: data-only menu

    def test_power_menu_needs_sync_for_store_load(self):
        assert POWER_SYNC_MENU.select({("w", "r")}).name == "sync"


# ----------------------------------------------------------------------
# Derivation
# ----------------------------------------------------------------------
class TestDerivation:
    def test_invalid_placement_rejected(self):
        with pytest.raises(MappingError, match="must be 'pre' or"):
            derive_slots(TSO_MOST, {"ld": "pre", "st": "sideways"})
        with pytest.raises(MappingError, match="must be 'pre' or"):
            derive_slots(TSO_MOST, {"ld": "pre"})

    def test_post_slot_preferred_over_pre(self):
        slots = derive_slots(TSO_MOST, {"ld": "post", "st": "post"})
        # ld->ld and ld->st land in the load's own post slot...
        assert slots[("ld", "post")] == {("r", "r"), ("r", "w")}
        # ...and st->st in the store's post slot; pre slots stay empty.
        assert slots[("st", "post")] == {("w", "w")}
        assert slots[("ld", "pre")] == set()
        assert slots[("st", "pre")] == set()

    def test_fallback_to_successor_pre_slot(self):
        slots = derive_slots(TSO_MOST, {"ld": "pre", "st": "pre"})
        # ld->ld goes to the *second* load's pre slot, ld->st to the
        # store's pre slot alongside st->st.
        assert slots[("ld", "pre")] == {("r", "r")}
        assert slots[("st", "pre")] == {("r", "w"), ("w", "w")}

    def test_uncoverable_pair_rejected(self):
        # ld fences lead, st fences trail: the ld->st obligation has no
        # slot between the two accesses.
        with pytest.raises(MappingError, match="not coverable"):
            derive_slots(TSO_MOST, {"ld": "pre", "st": "post"})
        with pytest.raises(MappingError, match="not coverable"):
            derive_slots(SC_MOST, {"ld": "post", "st": "pre"})

    def test_sc_trailing_derivation(self):
        scheme = derive_scheme(SC_MOST, ARM_DMB_MENU,
                               {"ld": "post", "st": "post"})
        assert scheme.ld_post is Fence.FRM
        assert scheme.st_post is Fence.FWM
        assert scheme.ld_pre is None and scheme.st_pre is None

    def test_explicit_fences_always_selected(self):
        scheme = derive_scheme(RMO_MOST, ARM_DMB_MENU,
                               {"ld": "pre", "st": "pre"})
        assert scheme.mfence is Fence.FSC
        assert scheme.lfence is Fence.FRM
        assert scheme.sfence is Fence.FWW

    def test_explicit_fences_droppable(self):
        assert NOFENCES_SCHEME.mfence is None
        assert NOFENCES_SCHEME.rules() == ()

    def test_data_only_menu_cannot_feed_the_frontend(self):
        with pytest.raises(MappingError, match="no TCG kind"):
            derive_scheme(TSO_MOST, POWER_SYNC_MENU,
                          {"ld": "post", "st": "pre"})


# ----------------------------------------------------------------------
# The registered schemes: golden placements and provenance
# ----------------------------------------------------------------------
class TestRegisteredSchemes:
    def test_qemu_scheme_matches_figure_2(self):
        assert QEMU_SCHEME.ld_pre is Fence.FRR
        assert QEMU_SCHEME.ld_post is None
        assert QEMU_SCHEME.st_pre is Fence.FMW
        assert QEMU_SCHEME.st_post is None

    def test_risotto_scheme_matches_figure_7a(self):
        assert RISOTTO_SCHEME.ld_pre is None
        assert RISOTTO_SCHEME.ld_post is Fence.FRM
        assert RISOTTO_SCHEME.st_pre is Fence.FWW
        assert RISOTTO_SCHEME.st_post is None

    def test_golden_origin_strings(self):
        # The exact literals the frontend used to hand-type.
        assert QEMU_SCHEME.rule("ld_pre") == \
            (Fence.FRR, "RMOV->Frr;ld")
        assert QEMU_SCHEME.rule("st_pre") == \
            (Fence.FMW, "WMOV->Fmw;st")
        assert RISOTTO_SCHEME.rule("ld_post") == \
            (Fence.FRM, "RMOV->ld;Frm")
        assert RISOTTO_SCHEME.rule("st_pre") == \
            (Fence.FWW, "WMOV->Fww;st")
        assert RISOTTO_SCHEME.rule("mfence") == \
            (Fence.FSC, "MFENCE->Fsc")
        assert RISOTTO_SCHEME.rule("lfence") == \
            (Fence.FRM, "LFENCE->Frm")
        assert RISOTTO_SCHEME.rule("sfence") == \
            (Fence.FWW, "SFENCE->Fww")

    def test_rule_rejects_unknown_slot(self):
        with pytest.raises(MappingError, match="unknown scheme slot"):
            RISOTTO_SCHEME.rule("ld_mid")

    def test_scheme_for_policy_round_trip(self):
        assert scheme_for_policy("qemu") is QEMU_SCHEME
        assert scheme_for_policy("risotto") is RISOTTO_SCHEME
        assert scheme_for_policy("no-fences") is NOFENCES_SCHEME
        with pytest.raises(MappingError, match="no scheme for"):
            scheme_for_policy("fastest")

    def test_known_origins_cover_optimizer_tags(self):
        origins = known_origins()
        assert OPTIMIZER_ORIGINS <= origins
        assert "RMOV->ld;Frm" in origins
        assert "MFENCE->Fsc" in origins

    def test_origin_formats_are_the_slot_registry(self):
        for scheme in SCHEMES.values():
            for slot, kind, origin in scheme.rules():
                assert origin == \
                    ORIGIN_FORMATS[slot].format(kind=kind.value)


# ----------------------------------------------------------------------
# Schemes as op mappings: golden equivalence with the hand-written
# mappings, and the Theorem-1 expectation matrix
# ----------------------------------------------------------------------
SAMPLE_OPS = (R("a", "X"), W("Y", 1), MFENCE())


class TestSchemeMappings:
    @pytest.mark.parametrize("scheme_name,legacy", [
        ("qemu", M.qemu_x86_to_tcg),
        ("risotto", M.risotto_x86_to_tcg),
        ("no-fences", M.nofences_x86_to_tcg),
    ])
    def test_x86_to_tcg_golden(self, scheme_name, legacy):
        derived = scheme_x86_to_tcg(SCHEMES[scheme_name])
        for op in SAMPLE_OPS:
            assert derived.map_op(op) == legacy.map_op(op)

    def test_mapping_names_and_registration(self):
        for scheme in SCHEMES.values():
            for rmw in SCHEME_RMW_LOWERINGS:
                name = f"most-{scheme.name}-{rmw}"
                assert name in SCHEME_MAPPINGS
                assert M.ALL_MAPPINGS[name] is SCHEME_MAPPINGS[name]
                assert SCHEME_MAPPINGS[name].src_arch is Arch.X86
                assert SCHEME_MAPPINGS[name].tgt_arch is Arch.ARM

    def test_expected_verdict_model(self):
        # Sound tables with trailing load fences pass under both
        # lowerings; leading-only load fences lose the failed-CAS
        # ordering rmw1al needs (the paper's MPQ bug).
        assert expected_verdict(RISOTTO_SCHEME, "rmw1al")
        assert expected_verdict(QEMU_SCHEME, "rmw2ff")
        assert not expected_verdict(QEMU_SCHEME, "rmw1al")
        assert not expected_verdict(SCHEMES["pso-lead"], "rmw2ff")

    def test_scheme_mapping_composes(self):
        mapping = scheme_mapping(RISOTTO_SCHEME, "rmw2ff")
        lowered = mapping.map_op(R("a", "X"))
        kinds = [op.kind for op in lowered
                 if hasattr(op, "kind")]
        assert Fence.DMBLD in kinds  # Frm lowers to dmb ld

    @pytest.mark.parametrize("name", sorted(SCHEME_MAPPINGS))
    def test_corpus_verdict_matches_expectation(self, name):
        report = check_corpus(X86_CORPUS, SCHEME_MAPPINGS[name],
                              X86, ARM)
        assert report.ok == SCHEME_EXPECTED[name], (
            f"{name}: corpus verdict {report.ok} != expected "
            f"{SCHEME_EXPECTED[name]}; broken="
            f"{[v.test_name for v in report.verdicts if not v.ok]}")

    def test_qemu_rmw1_breaks_exactly_like_gcc10(self):
        # The derived qemu scheme with the casal lowering reproduces
        # the documented MPQ failure of qemu-gcc10, nothing else.
        report = check_corpus(X86_CORPUS,
                              SCHEME_MAPPINGS["most-qemu-rmw1al"],
                              X86, ARM)
        broken = [v.test_name for v in report.verdicts if not v.ok]
        assert broken == ["MPQ"]
