"""TCG IR structure and optimizer pass tests."""

import pytest

from repro.core.events import Fence
from repro.errors import TranslationError
from repro.tcg.ir import (
    Cond,
    Const,
    MO_ALL,
    MO_LD_LD,
    MO_LD_ST,
    MO_ST_LD,
    MO_ST_ST,
    Op,
    TCGBlock,
    Temp,
    fence_to_mask,
    mask_to_fence,
)
from repro.tcg.optimizer import (
    OptimizerConfig,
    constant_propagation,
    dead_code_elimination,
    memory_access_elimination,
    merge_fences_pass,
    optimize,
)


def t(name):
    return Temp(name)


def g(name):
    return Temp(name, is_global=True)


class TestMasks:
    def test_fence_mask_roundtrip(self):
        for fence in (Fence.FRR, Fence.FRW, Fence.FRM, Fence.FWW,
                      Fence.FWR, Fence.FMW, Fence.FMM):
            assert mask_to_fence(fence_to_mask(fence)) is fence

    def test_fsc_maps_to_all(self):
        assert fence_to_mask(Fence.FSC) == MO_ALL

    def test_frm_is_ld_ld_plus_ld_st(self):
        assert fence_to_mask(Fence.FRM) == MO_LD_LD | MO_LD_ST

    def test_zero_mask_rejected(self):
        with pytest.raises(TranslationError):
            mask_to_fence(0)

    def test_non_tcg_fence_rejected(self):
        with pytest.raises(TranslationError):
            fence_to_mask(Fence.DMBFF)


class TestOpIO:
    def test_alu_outputs_inputs(self):
        op = Op("add", (t("t0"), t("t1"), Const(3)))
        assert op.outputs() == (t("t0"),)
        assert op.inputs() == (t("t1"),)

    def test_store_has_no_outputs(self):
        op = Op("st", (t("t0"), t("t1"), Const(0)))
        assert op.outputs() == ()
        assert set(op.inputs()) == {t("t0"), t("t1")}

    def test_call_ret_is_output(self):
        op = Op("call", ("helper_fadd", t("t9"), t("t1"), t("t2")))
        assert op.outputs() == (t("t9"),)
        assert set(op.inputs()) == {t("t1"), t("t2")}

    def test_side_effects(self):
        assert Op("st", (t("a"), t("b"), Const(0))).has_side_effects()
        assert Op("mb", (Const(1),)).has_side_effects()
        assert not Op("add", (t("a"), t("b"), t("c"))).has_side_effects()


def make_block(*ops):
    block = TCGBlock(guest_pc=0x1000)
    block.ops = list(ops)
    return block


class TestConstProp:
    def test_folds_constant_alu(self):
        block = make_block(
            Op("movi", (t("t0"), Const(4))),
            Op("movi", (t("t1"), Const(5))),
            Op("add", (t("t2"), t("t0"), t("t1"))),
        )
        constant_propagation(block)
        assert block.ops[2] == Op("movi", (t("t2"), Const(9)))

    def test_false_dependency_elimination(self):
        # x * 0 -> 0 even when x is unknown (Section 6.1).
        block = make_block(
            Op("movi", (t("t1"), Const(0))),
            Op("mul", (t("t2"), t("t0"), t("t1"))),
        )
        constant_propagation(block)
        assert block.ops[1] == Op("movi", (t("t2"), Const(0)))

    def test_add_zero_identity(self):
        block = make_block(
            Op("movi", (t("t1"), Const(0))),
            Op("add", (t("t2"), t("t0"), t("t1"))),
        )
        constant_propagation(block)
        assert block.ops[1] == Op("mov", (t("t2"), t("t0")))

    def test_setcond_folds(self):
        block = make_block(
            Op("movi", (t("t0"), Const(7))),
            Op("setcond", (t("t1"), t("t0"), Const(7), Cond.EQ)),
        )
        constant_propagation(block)
        assert block.ops[1] == Op("movi", (t("t1"), Const(1)))

    def test_label_clears_knowledge(self):
        from repro.tcg.ir import LabelRef

        block = make_block(
            Op("movi", (t("t0"), Const(4))),
            Op("set_label", (LabelRef(0),)),
            Op("add", (t("t1"), t("t0"), Const(1))),
        )
        constant_propagation(block)
        # After the label t0 is no longer known constant.
        assert block.ops[2].name == "add"

    def test_impure_call_clears_globals(self):
        block = make_block(
            Op("movi", (g("g_rax"), Const(4))),
            Op("call", ("helper_syscall", None)),
            Op("add", (t("t1"), g("g_rax"), Const(1))),
        )
        constant_propagation(block)
        assert block.ops[2].name == "add"  # not folded

    def test_pure_helper_keeps_globals(self):
        block = make_block(
            Op("movi", (g("g_rbx"), Const(4))),
            Op("call", ("helper_fadd", t("t0"), t("t1"), t("t2"))),
            Op("add", (t("t3"), g("g_rbx"), Const(1))),
        )
        constant_propagation(block)
        assert block.ops[2] == Op("movi", (t("t3"), Const(5)))

    def test_division_by_zero_not_folded(self):
        block = make_block(
            Op("movi", (t("t0"), Const(1))),
            Op("movi", (t("t1"), Const(0))),
            Op("divu", (t("t2"), t("t0"), t("t1"))),
        )
        constant_propagation(block)
        assert block.ops[2].name == "divu"


class TestMemOpt:
    def _addr_setup(self):
        return [
            Op("mov", (t("a0"), g("g_rbx"))),
            Op("add", (t("a1"), g("g_rbx"), Const(0))),
        ]

    def test_raw_forwarding(self):
        block = make_block(
            Op("st", (t("v"), t("a0"), Const(8))),
            Op("ld", (t("x"), t("a0"), Const(8))),
        )
        removed = memory_access_elimination(block)
        assert removed == 1
        assert block.ops[1] == Op("mov", (t("x"), t("v")))

    def test_raw_forwarding_across_value_numbered_addresses(self):
        # Two different temps holding the same symbolic address.
        block = make_block(
            Op("mov", (t("a0"), g("g_rbx"))),
            Op("st", (t("v"), t("a0"), Const(8))),
            Op("mov", (t("a1"), g("g_rbx"))),
            Op("ld", (t("x"), t("a1"), Const(8))),
        )
        assert memory_access_elimination(block) == 1

    @pytest.mark.parametrize("mask", [
        MO_LD_LD | MO_ST_LD,   # Fmr — the FMR bug's fence class
        MO_ALL,                # Fmm/Fsc indistinguishable: refuse
    ], ids=["fmr", "full"])
    def test_no_forwarding_across_read_ordering_fences(self, mask):
        block = make_block(
            Op("st", (t("v"), t("a0"), Const(0))),
            Op("mb", (Const(mask),)),
            Op("ld", (t("x"), t("a0"), Const(0))),
        )
        assert memory_access_elimination(block) == 0
        assert block.ops[2].name == "ld"

    def test_forwarding_across_fww(self):
        block = make_block(
            Op("st", (t("v"), t("a0"), Const(0))),
            Op("mb", (Const(MO_ST_ST),)),
            Op("ld", (t("x"), t("a0"), Const(0))),
        )
        assert memory_access_elimination(block) == 1

    def test_rar_reuse(self):
        block = make_block(
            Op("ld", (t("x"), t("a0"), Const(0))),
            Op("ld", (t("y"), t("a0"), Const(0))),
        )
        assert memory_access_elimination(block) == 1
        assert block.ops[1] == Op("mov", (t("y"), t("x")))

    def test_rar_blocked_by_intervening_store_to_unknown(self):
        block = make_block(
            Op("ld", (t("x"), t("a0"), Const(0))),
            Op("st", (t("v"), t("a9"), Const(0))),  # may alias
            Op("ld", (t("y"), t("a0"), Const(0))),
        )
        assert memory_access_elimination(block) == 0

    def test_same_base_different_offset_no_alias(self):
        block = make_block(
            Op("ld", (t("x"), t("a0"), Const(0))),
            Op("st", (t("v"), t("a0"), Const(8))),  # disjoint word
            Op("ld", (t("y"), t("a0"), Const(0))),
        )
        assert memory_access_elimination(block) == 1

    def test_waw_removal(self):
        block = make_block(
            Op("st", (t("v1"), t("a0"), Const(0))),
            Op("st", (t("v2"), t("a0"), Const(0))),
        )
        assert memory_access_elimination(block) == 1
        assert len([op for op in block.ops if op.name == "st"]) == 1
        assert block.ops[-1].args[0] == t("v2")

    def test_waw_not_removed_across_fww(self):
        """The conservative stance from the checker's F-WAW finding."""
        block = make_block(
            Op("st", (t("v1"), t("a0"), Const(0))),
            Op("mb", (Const(MO_ST_ST),)),
            Op("st", (t("v2"), t("a0"), Const(0))),
        )
        assert memory_access_elimination(block) == 0

    def test_atomics_invalidate(self):
        block = make_block(
            Op("st", (t("v"), t("a0"), Const(0))),
            Op("cas", (t("old"), t("a1"), t("e"), t("n"))),
            Op("ld", (t("x"), t("a0"), Const(0))),
        )
        assert memory_access_elimination(block) == 0


class TestFenceMerge:
    def test_adjacent_fences_merge(self):
        block = make_block(
            Op("mb", (Const(MO_LD_LD | MO_LD_ST),)),  # Frm
            Op("mb", (Const(MO_ST_ST),)),             # Fww
        )
        assert merge_fences_pass(block) == (1, 0)
        assert block.ops == [
            Op("mb", (Const(MO_LD_LD | MO_LD_ST | MO_ST_ST),))]

    def test_merge_across_pure_ops(self):
        block = make_block(
            Op("mb", (Const(MO_LD_LD),)),
            Op("add", (t("t0"), t("t1"), Const(1))),
            Op("mb", (Const(MO_ST_ST),)),
        )
        assert merge_fences_pass(block) == (1, 0)
        assert block.ops[0].args[0].value == MO_LD_LD | MO_ST_ST

    def test_no_merge_across_memory_access(self):
        block = make_block(
            Op("mb", (Const(MO_LD_LD),)),
            Op("ld", (t("t0"), t("t1"), Const(0))),
            Op("mb", (Const(MO_ST_ST),)),
        )
        assert merge_fences_pass(block) == (0, 0)

    def test_no_merge_across_block_label(self):
        """Fences never merge across control flow (block granularity,
        Section 8's ArMOR discussion)."""
        from repro.tcg.ir import LabelRef

        block = make_block(
            Op("mb", (Const(MO_LD_LD),)),
            Op("set_label", (LabelRef(0),)),
            Op("mb", (Const(MO_ST_ST),)),
        )
        assert merge_fences_pass(block) == (0, 0)

    def test_empty_mask_dropped(self):
        block = make_block(Op("mb", (Const(0),)))
        assert merge_fences_pass(block) == (0, 1)
        assert block.ops == []

    def test_pure_subsumption_keeps_mapping_rule_origin(self):
        """Merging a subset-mask fence must not retag the survivor.

        The union leaves the surviving mask unchanged, so the fence the
        mapping rule emitted was never strengthened — billing it to
        ``fence_merge:strengthen`` would misattribute its cycles in the
        by-origin footers (Figure 12).
        """
        block = make_block(
            Op("mb", (Const(MO_LD_LD | MO_LD_ST),),
               origin="RMOV->ld;Frm"),
            Op("mb", (Const(MO_LD_LD),), origin="RMOV->ld;Frr"),
        )
        assert merge_fences_pass(block) == (1, 0)
        assert len(block.ops) == 1
        assert block.ops[0].args[0].value == MO_LD_LD | MO_LD_ST
        assert block.ops[0].origin == "RMOV->ld;Frm"

    def test_genuine_strengthen_retags_to_optimizer(self):
        block = make_block(
            Op("mb", (Const(MO_LD_LD),), origin="RMOV->ld;Frr"),
            Op("mb", (Const(MO_ST_ST),), origin="WMOV->Fww;st"),
        )
        assert merge_fences_pass(block) == (1, 0)
        assert block.ops[0].args[0].value == MO_LD_LD | MO_ST_ST
        assert block.ops[0].origin == "fence_merge:strengthen"


class TestDeadCode:
    def test_unused_pure_op_removed(self):
        block = make_block(
            Op("movi", (t("t0"), Const(4))),
            Op("exit_tb", (Const(0x2000),)),
        )
        assert dead_code_elimination(block) == 1

    def test_used_op_kept(self):
        block = make_block(
            Op("movi", (t("t0"), Const(4))),
            Op("st", (t("t0"), t("t1"), Const(0))),
            Op("exit_tb", (Const(0x2000),)),
        )
        assert dead_code_elimination(block) == 0

    def test_global_write_kept(self):
        block = make_block(
            Op("movi", (g("g_rax"), Const(4))),
            Op("exit_tb", (Const(0x2000),)),
        )
        assert dead_code_elimination(block) == 0

    def test_overwritten_flag_write_removed(self):
        block = make_block(
            Op("movi", (g("g_zf"), Const(0))),
            Op("movi", (g("g_zf"), Const(1))),
            Op("exit_tb", (Const(0x2000),)),
        )
        assert dead_code_elimination(block) == 1

    def test_flag_read_before_overwrite_kept(self):
        block = make_block(
            Op("movi", (g("g_zf"), Const(0))),
            Op("mov", (t("t0"), g("g_zf"))),
            Op("st", (t("t0"), t("t1"), Const(0))),
            Op("movi", (g("g_zf"), Const(1))),
            Op("exit_tb", (Const(0x2000),)),
        )
        assert dead_code_elimination(block) == 0

    def test_globals_live_across_calls(self):
        block = make_block(
            Op("movi", (g("g_rax"), Const(60))),
            Op("call", ("helper_syscall", None)),
            Op("movi", (g("g_rax"), Const(0))),
            Op("exit_tb", (Const(0x2000),)),
        )
        assert dead_code_elimination(block) == 0

    def test_trace_shape_still_eliminates(self):
        """A tier-2 trace opens with ``set_label`` and loops via
        ``br``; the prefix-only DCE formulation saw control at index 0
        and removed nothing, leaving dead flag materialization in hot
        loop bodies (and making single-block loop traces slower than
        their chained tier-1 form).  Per-segment liveness must still
        kill the overwritten flag write inside the loop body."""
        from repro.tcg.ir import LabelRef

        block = make_block(
            Op("set_label", (LabelRef(1),)),
            Op("movi", (g("g_zf"), Const(0))),
            Op("movi", (g("g_zf"), Const(1))),
            Op("brcond", (g("g_zf"), Const(0), Cond.NE, LabelRef(0))),
            Op("goto_tb", (Const(0x2000),)),
            Op("set_label", (LabelRef(0),)),
            Op("br", (LabelRef(1),)),
        )
        assert dead_code_elimination(block) == 1
        assert [op.name for op in block.ops] == [
            "set_label", "movi", "brcond", "goto_tb", "set_label",
            "br"]

    def test_temp_read_in_other_segment_stays_live(self):
        """A temp defined in one segment and consumed after a label is
        conservatively live at the segment boundary — back-branches
        mean any label can be re-entered."""
        from repro.tcg.ir import LabelRef

        block = make_block(
            Op("movi", (t("t0"), Const(4))),
            Op("set_label", (LabelRef(0),)),
            Op("st", (t("t0"), t("t1"), Const(0))),
            Op("exit_tb", (Const(0x2000),)),
        )
        assert dead_code_elimination(block) == 0


class TestPipeline:
    def test_full_pipeline_counts(self):
        block = make_block(
            Op("movi", (t("t0"), Const(2))),
            Op("movi", (t("t1"), Const(3))),
            Op("add", (t("t2"), t("t0"), t("t1"))),
            Op("mb", (Const(MO_LD_LD | MO_LD_ST),)),
            Op("mb", (Const(MO_ST_ST),)),
            Op("st", (t("t2"), g("g_rbx"), Const(0))),
            Op("exit_tb", (Const(0x2000),)),
        )
        stats = optimize(block)
        assert stats.folded >= 1
        assert stats.fences_merged == 1
        assert stats.dead_removed >= 1

    def test_passes_can_be_disabled(self):
        block = make_block(
            Op("mb", (Const(MO_LD_LD),)),
            Op("mb", (Const(MO_ST_ST),)),
        )
        stats = optimize(block, OptimizerConfig(
            constprop=False, memopt=False, fence_merge=False,
            deadcode=False))
        assert stats.fences_merged == 0
        assert len(block.ops) == 2


class TestForwardingStaleness:
    """Regression: forwarding must not read a register overwritten
    between the store and the load (found by differential fuzzing)."""

    def test_raw_forward_refused_when_source_overwritten(self):
        block = make_block(
            Op("st", (g("g_r9"), t("a0"), Const(8))),
            Op("shl", (g("g_r9"), g("g_r9"), Const(8))),
            Op("ld", (t("x"), t("a0"), Const(8))),
        )
        assert memory_access_elimination(block) == 0
        assert block.ops[2].name == "ld"

    def test_rar_reuse_refused_when_dest_overwritten(self):
        block = make_block(
            Op("ld", (g("g_rax"), t("a0"), Const(0))),
            Op("add", (g("g_rax"), g("g_rax"), Const(1))),
            Op("ld", (t("y"), t("a0"), Const(0))),
        )
        assert memory_access_elimination(block) == 0

    def test_forward_still_fires_when_value_unchanged(self):
        block = make_block(
            Op("st", (g("g_r9"), t("a0"), Const(8))),
            Op("add", (g("g_rax"), g("g_rax"), Const(1))),
            Op("ld", (t("x"), t("a0"), Const(8))),
        )
        assert memory_access_elimination(block) == 1
