"""GELF format, IDL parsing, host library and linker tests."""

import pytest

from repro.dbt import DBTEngine
from repro.dbt.config import RISOTTO, TCG_VER
from repro.errors import LinkError, LoaderError
from repro.loader import (
    GuestBinary,
    HostFunction,
    HostLibrary,
    HostLinker,
    Signature,
    build_binary,
    parse_idl,
)
from repro.machine.memory import Memory
from repro.workloads import build_libm, standard_libraries


class TestIdl:
    def test_parse_prototypes(self):
        sigs = parse_idl("""
            # math
            f64 sin(f64);
            i64 md5(ptr, i64);
            void notify();
        """)
        assert sigs["sin"] == Signature("sin", "f64", ("f64",))
        assert sigs["md5"].params == ("ptr", "i64")
        assert sigs["notify"].params == ()

    def test_void_params(self):
        sigs = parse_idl("i64 f(void);")
        assert sigs["f"].params == ()

    def test_bad_line_rejected(self):
        with pytest.raises(LoaderError):
            parse_idl("f64 sin f64;")

    def test_bad_type_rejected(self):
        with pytest.raises(LoaderError):
            parse_idl("f32 sin(f64);")

    def test_void_param_rejected(self):
        with pytest.raises(LoaderError):
            parse_idl("i64 f(void, i64);")

    def test_duplicate_rejected(self):
        with pytest.raises(LoaderError):
            parse_idl("f64 sin(f64);\nf64 sin(f64);")


class TestGelf:
    def _binary(self):
        return build_binary(
            "main:\n    call sin\n    hlt",
            guest_libs={"sin": "sin:\n    mov rax, 1\n    ret"},
        )

    def test_build_links_plt(self):
        binary = self._binary()
        assert binary.dynsym == ("sin",)
        assert "sin" in binary.plt
        assert binary.entry == binary.symbols["main"]

    def test_serialization_roundtrip(self):
        binary = self._binary()
        data = binary.to_bytes()
        parsed = GuestBinary.from_bytes(data)
        assert parsed.entry == binary.entry
        assert parsed.dynsym == binary.dynsym
        assert parsed.plt == binary.plt
        assert [s.name for s in parsed.sections] == \
            [s.name for s in binary.sections]
        assert parsed.section(".text").data == \
            binary.section(".text").data

    def test_bad_magic_rejected(self):
        with pytest.raises(LoaderError):
            GuestBinary.from_bytes(b"ELF!" + b"\x00" * 32)

    def test_load_into_memory(self):
        memory = Memory()
        self._binary().load_into(memory)
        assert memory.in_image(0x0040_0000)

    def test_missing_entry_rejected(self):
        with pytest.raises(LoaderError):
            build_binary("start:\n hlt")

    def test_guest_lib_without_label_rejected(self):
        with pytest.raises(LoaderError):
            build_binary("main:\n call sin\n hlt",
                         guest_libs={"sin": "other:\n ret"})

    def test_data_sections(self):
        binary = build_binary("main:\n hlt", data={0x800000: 42})
        memory = Memory()
        binary.load_into(memory)
        assert memory.load_word(0x800000) == 42


class TestHostFunction:
    def test_invoke_matches_guest_algorithm(self):
        library = build_libm()
        memory = Memory()
        import struct

        bits = struct.unpack("<Q", struct.pack("<d", 0.5))[0]
        value = library["sin"].invoke(memory, (bits,))
        as_float = struct.unpack("<d", struct.pack("<Q", value))[0]
        assert abs(as_float - 0.479426) < 1e-4

    def test_wrong_arity_rejected(self):
        library = build_libm()
        with pytest.raises(LinkError):
            library["sin"].invoke(Memory(), (1, 2))

    def test_missing_function_rejected(self):
        with pytest.raises(LinkError):
            build_libm()["nope"]

    def test_duplicate_function_rejected(self):
        library = build_libm()
        with pytest.raises(LinkError):
            library.add(library["sin"])

    def test_idl_source_parses_back(self):
        library = standard_libraries()
        sigs = parse_idl(library.idl_source())
        assert set(sigs) == set(library.functions)

    def test_non_returning_body_faults(self):
        fn = HostFunction(
            signature=Signature("spin", "i64", ()),
            guest_asm="spin:\n loop:\n jmp loop",
            native_cost=lambda: 1,
        )
        with pytest.raises(LinkError):
            fn.invoke(Memory(), (), max_steps=500)


class TestLinker:
    def _engine_and_binary(self, config):
        library = build_libm()
        binary = build_binary(
            """
main:
    mov rdi, 4602678819172646912    ; bits(0.5)
    call sin
    mov rdi, rax
    mov rax, 1
    syscall
    mov rdi, 0
    mov rax, 60
    syscall
""",
            guest_libs={"sin": library["sin"].guest_asm},
        )
        engine = DBTEngine(config, n_cores=1)
        binary.load_into(engine.machine.memory)
        return library, binary, engine

    def test_linked_and_translated_agree(self):
        library, binary, translated_engine = \
            self._engine_and_binary(TCG_VER)
        translated = translated_engine.run(binary.entry)

        library, binary, linked_engine = \
            self._engine_and_binary(RISOTTO)
        linker = HostLinker(library, library.idl_source())
        report = linker.link(binary, linked_engine.runtime)
        assert report.linked == ["sin"]
        linked = linked_engine.run(binary.entry)

        assert translated.output == linked.output
        assert linked.elapsed_cycles < translated.elapsed_cycles
        assert linked.stats.plt_calls == 1
        assert linker.call_counts["sin"] == 1

    def test_unresolved_imports_stay_translated(self):
        library = HostLibrary("empty")
        __, binary, engine = self._engine_and_binary(RISOTTO)
        linker = HostLinker(library, "")
        report = linker.link(binary, engine.runtime)
        assert report.unresolved == ["sin"]
        result = engine.run(binary.entry)  # falls back to translation
        assert result.output

    def test_signature_mismatch_rejected(self):
        library = build_libm()
        __, binary, engine = self._engine_and_binary(RISOTTO)
        linker = HostLinker(library, "f64 sin(f64, f64);")
        with pytest.raises(LinkError):
            linker.link(binary, engine.runtime)

    def test_report_str(self):
        library, binary, engine = self._engine_and_binary(RISOTTO)
        linker = HostLinker(library, library.idl_source())
        report = linker.link(binary, engine.runtime)
        assert "sin" in str(report)
