"""Cross-package integration tests.

The deepest one runs a *real translated* MP litmus stress through the
whole system — guest x86 binary → DBT → Arm code → store-buffer
machine — and checks that the no-fences variant exhibits the weak
outcome while Risotto's verified mapping never does.  This connects the
axiomatic verdicts of repro.core to actual executed code.
"""

import pytest

from repro.dbt import DBTEngine, VARIANTS
from repro.isa.x86 import assemble
from repro.tcg.backend_arm import lower_barrier
from repro.tcg.ir import fence_to_mask
from repro.core.events import Fence
from repro.core.mappings import lower_tcg_fence
from repro.core.program import FenceOp

X_BASE = 0x10_0000
Y_BASE = 0x12_0000
RES_BASE = 0x14_0000
BAR_BASE = 0x16_0000
ITERS = 64
STRIDE = 64


def _mp_guest(iterations: int) -> str:
    """Looping MP with a per-iteration sense barrier and phase sweep,
    mirroring repro.machine.litmus at the guest-x86 level."""
    return f"""
main:
    mov rax, 1000
    mov rdi, reader
    mov rsi, 0
    syscall
    mov r15, rax
    mov rdi, 1
    call writer
    mov rdi, r15
    mov rax, 1001
    syscall
    mov rdi, 0
    mov rax, 60
    syscall

writer:
    mov r9, 0                  ; iteration
w_loop:
    mov r10, r9
    imul r10, {STRIDE}
    ; barrier
    mov rbx, {BAR_BASE}
    add rbx, r10
    mov rcx, 1
    lock xadd [rbx], rcx
w_wait:
    mov rcx, [rbx]
    cmp rcx, 2
    jb w_wait
    ; phase sweep
    mov rcx, r9
    and rcx, 7
w_phase:
    cmp rcx, 0
    je w_go
    dec rcx
    jmp w_phase
w_go:
    ; precompute both addresses so the stores sit back to back in the
    ; translated code (widens the reordering window)
    mov rbx, {X_BASE}
    add rbx, r10
    mov rbp, {Y_BASE}
    add rbp, r10
    mov rcx, 1
    mov [rbx], rcx             ; X = 1
    mov [rbp], rcx             ; Y = 1
    inc r9
    cmp r9, {iterations}
    jne w_loop
    ret

reader:
    mov r9, 0
r_loop:
    mov r10, r9
    imul r10, {STRIDE}
    mov rbx, {BAR_BASE}
    add rbx, r10
    mov rcx, 1
    lock xadd [rbx], rcx
r_wait:
    mov rcx, [rbx]
    cmp rcx, 2
    jb r_wait
    mov rcx, r9
    imul rcx, 5
    and rcx, 31
r_phase:
    cmp rcx, 0
    je r_go
    dec rcx
    jmp r_phase
r_go:
    mov rbp, {Y_BASE}
    add rbp, r10
    mov rbx, {X_BASE}
    add rbx, r10
    mov r11, [rbp]             ; a = Y
    mov r12, [rbx]             ; b = X
    mov rbx, {RES_BASE}
    add rbx, r10
    shl r11, 1
    or r11, r12
    mov [rbx], r11             ; record (a<<1)|b
    inc r9
    cmp r9, {iterations}
    jne r_loop
    ret
"""


def _run_mp(variant: str, seeds: range) -> set[int]:
    outcomes: set[int] = set()
    assembly = assemble(_mp_guest(ITERS), base=0x400000)
    for seed in seeds:
        engine = DBTEngine(VARIANTS[variant], n_cores=2, seed=seed)
        engine.load_image(assembly.base, assembly.code)
        engine.run(assembly.label("main"))
        for i in range(ITERS):
            outcomes.add(engine.machine.memory.load_word(
                RES_BASE + i * STRIDE))
    return outcomes


#: (a<<1)|b encodings: a=1,b=0 -> 2 is the weak MP outcome.
WEAK = 2


class TestTranslatedLitmus:
    def test_nofences_translation_exhibits_weak_mp(self):
        # Statistical: ~2-4 weak observations per 1000 iterations; 30
        # seeds x 64 iterations makes a miss vanishingly unlikely.
        outcomes = _run_mp("no-fences", range(30))
        assert WEAK in outcomes, (
            "the incorrect translation should reorder the writer's "
            f"stores at least once; saw {outcomes}")

    @pytest.mark.parametrize("variant", ["qemu", "tcg-ver", "risotto"])
    def test_fenced_translations_never_weak(self, variant):
        outcomes = _run_mp(variant, range(8))
        assert WEAK not in outcomes
        assert outcomes <= {0, 1, 3}


class TestMappingConsistency:
    """The system-level fence lowering must match the verified
    op-level mapping tables (Figure 7b)."""

    @pytest.mark.parametrize("fence,expected", [
        (Fence.FRR, "dmbld"),
        (Fence.FRW, "dmbld"),
        (Fence.FRM, "dmbld"),
        (Fence.FWW, "dmbst"),
        (Fence.FWR, "dmbff"),
        (Fence.FMM, "dmbff"),
        (Fence.FSC, "dmbff"),
        (Fence.FMW, "dmbff"),
    ])
    def test_backend_matches_verified_lowering(self, fence, expected):
        # backend (mask-based) lowering
        assert lower_barrier(fence_to_mask(fence)) == expected
        # op-level verified lowering
        (op,) = lower_tcg_fence(fence)
        assert isinstance(op, FenceOp)
        assert op.kind.value.lower() == expected

    def test_frontend_policies_match_mapping_module(self):
        """The frontend's per-access fences are the Figure 7a/2 rows."""
        from repro.isa.x86.assembler import assemble as asm
        from repro.machine.memory import Memory
        from repro.tcg.frontend_x86 import (
            FencePolicy,
            FrontendConfig,
            X86Frontend,
        )
        from repro.tcg.ir import MO_LD_LD, MO_LD_ST, MO_ST_ST

        def masks(policy, source):
            assembly = asm(source, base=0x1000)
            memory = Memory()
            memory.add_image(0x1000, assembly.code)
            frontend = X86Frontend(FrontendConfig(fence_policy=policy))
            block = frontend.translate_block(memory, 0x1000)
            return [op.args[0].value for op in block.ops
                    if op.name == "mb"]

        # Figure 7a: ld; Frm / Fww; st
        assert masks(FencePolicy.RISOTTO, "mov rax, [rbx]\n hlt") == \
            [MO_LD_LD | MO_LD_ST]
        assert masks(FencePolicy.RISOTTO, "mov [rbx], rax\n hlt") == \
            [MO_ST_ST]
        # Figure 2: Frr; ld / Fmw; st
        assert masks(FencePolicy.QEMU, "mov rax, [rbx]\n hlt") == \
            [MO_LD_LD]
        assert masks(FencePolicy.QEMU, "mov [rbx], rax\n hlt") == \
            [MO_LD_ST | MO_ST_ST]


class TestGelfThroughEngine:
    def test_serialized_binary_runs(self):
        """GELF bytes -> parse -> load -> translate -> run."""
        from repro.loader import GuestBinary, build_binary

        binary = build_binary("""
main:
    mov rdi, 123
    mov rax, 1
    syscall
    mov rdi, 0
    mov rax, 60
    syscall
""")
        reparsed = GuestBinary.from_bytes(binary.to_bytes())
        engine = DBTEngine(VARIANTS["risotto"], n_cores=1)
        reparsed.load_into(engine.machine.memory)
        result = engine.run(reparsed.entry)
        assert result.output == [123]
