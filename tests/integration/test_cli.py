"""End-to-end tests for the unified ``python -m repro`` CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.dbt import xlat_cache


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_XLAT_CACHE", str(tmp_path / "xlat"))
    monkeypatch.setenv("REPRO_BEHAVIOR_CACHE",
                       str(tmp_path / "behaviors"))
    xlat_cache.reset_stats()
    yield tmp_path
    xlat_cache.reset_memory()


class TestParser:
    def test_help_lists_every_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ("run", "verify", "fuzz", "obsreport", "perf",
                        "cache", "serve", "loadgen"):
            assert command in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "run" in capsys.readouterr().out


class TestRun:
    def test_fig12_slice(self, cache_env, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        code = main([
            "run", "fig12", "--benchmarks", "histogram",
            "--variants", "qemu,risotto", "--iterations", "40",
            "--workers", "1", "--bench-json", str(bench),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "translation cache:" in out
        payload = json.loads(bench.read_text())
        assert payload["schema"] == "repro-bench/1"
        assert payload["stats"]["xlat_misses"] > 0
        assert {r["variant"] for r in payload["rows"]} == \
            {"qemu", "risotto"}

    def test_warm_rerun_reports_zero_misses(self, cache_env, tmp_path,
                                            capsys):
        argv = ["run", "fig12", "--benchmarks", "histogram",
                "--variants", "risotto", "--iterations", "40",
                "--workers", "1"]
        assert main(argv) == 0
        capsys.readouterr()
        xlat_cache.reset_memory()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert " 0 misses" in out

    def test_unknown_benchmark_names_choices(self, cache_env):
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="histogram"):
            main(["run", "fig12", "--benchmarks", "nosuch",
                  "--workers", "1"])

    def test_unknown_variant_names_choices(self, cache_env):
        from repro.errors import ReproError
        with pytest.raises(ReproError, match="risotto"):
            main(["run", "fig12", "--variants", "wasm",
                  "--workers", "1"])


class TestCache:
    def test_stats_json_round_trips(self, cache_env, capsys):
        assert main(["cache", "stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"xlat", "behavior"}
        assert payload["xlat"]["enabled"] is True
        assert payload["xlat"]["disk_entries"] == 0

    def test_clear_removes_xlat_entries(self, cache_env, capsys):
        main(["run", "fig12", "--benchmarks", "histogram",
              "--variants", "risotto", "--iterations", "40",
              "--workers", "1"])
        capsys.readouterr()
        assert main(["cache", "stats", "--json"]) == 0
        before = json.loads(capsys.readouterr().out)
        assert before["xlat"]["disk_entries"] > 0
        assert main(["cache", "clear", "--xlat"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json"]) == 0
        after = json.loads(capsys.readouterr().out)
        assert after["xlat"]["disk_entries"] == 0

    def test_stats_enumerates_namespaces(self, cache_env, capsys):
        from repro import api
        from repro.workloads.kernels import KernelSpec
        tiny = KernelSpec("tiny", loads=2, stores=1, alu=2, fp=1,
                          iterations=40, threads=2, working_set=64)
        api.submit(api.kernel_job(tiny, variant="risotto",
                                  namespace="tenant-a"))
        assert main(["cache", "stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # The per-namespace breakdown nests inside each cache block.
        spaces = payload["xlat"]["namespaces"]
        assert spaces["tenant-a"]["entries"] > 0
        assert spaces["tenant-a"]["bytes"] > 0
        assert spaces[""]["entries"] == 0
        assert "namespaces" in payload["behavior"]
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "namespace tenant-a:" in out


class TestPerf:
    @pytest.fixture()
    def history_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
        store = tmp_path / "history"
        monkeypatch.setenv("REPRO_BENCH_HISTORY_DIR", str(store))
        return store

    def _fig12_bench(self, tmp_path, capsys, name="bench.json"):
        bench = tmp_path / name
        assert main([
            "run", "fig12", "--benchmarks", "histogram",
            "--variants", "risotto", "--iterations", "40",
            "--workers", "1", "--bench-json", str(bench),
        ]) == 0
        capsys.readouterr()
        return bench

    def test_record_then_unmodified_check_passes(self, cache_env,
                                                 history_env,
                                                 tmp_path, capsys):
        bench = self._fig12_bench(tmp_path, capsys)
        assert main(["perf", "record", str(bench),
                     "--rev", "seed"]) == 0
        out = capsys.readouterr().out
        assert "recorded fig12" in out
        # The acceptance contract: an unmodified re-run exits zero.
        assert main(["perf", "check", str(bench),
                     "--require-baseline"]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, cache_env,
                                               history_env,
                                               tmp_path, capsys):
        bench = self._fig12_bench(tmp_path, capsys)
        assert main(["perf", "record", str(bench)]) == 0
        capsys.readouterr()
        # Inject a 10% cycle slowdown into every row, config untouched
        # so the fingerprint still matches the recorded baseline.
        payload = json.loads(bench.read_text())
        for row in payload["rows"]:
            row["cycles"] = int(row["cycles"] * 1.10)
            row["total_cycles"] = int(row["total_cycles"] * 1.10)
        slow = tmp_path / "bench_slow.json"
        slow.write_text(json.dumps(payload))
        assert main(["perf", "check", str(slow)]) == 1
        out = capsys.readouterr().out
        assert "verdict: FAIL" in out
        assert "REGRESSION" in out

    def test_check_without_baseline(self, cache_env, history_env,
                                    tmp_path, capsys):
        bench = self._fig12_bench(tmp_path, capsys)
        # No record yet: lenient mode skips, strict mode fails.
        assert main(["perf", "check", str(bench)]) == 0
        capsys.readouterr()
        assert main(["perf", "check", str(bench),
                     "--require-baseline"]) == 1

    def test_floors_subsume_verify_floor_gate(self, cache_env,
                                              history_env, tmp_path,
                                              capsys):
        bench = tmp_path / "bench_verify.json"
        assert main(["verify", "--tests", "MP,SB", "--workers", "1",
                     "--bench-json", str(bench)]) == 0
        capsys.readouterr()
        floors = tmp_path / "floors.json"
        floors.write_text(json.dumps({"min_pruned_fraction": 0.05}))
        assert main(["perf", "check", str(bench),
                     "--floors", str(floors)]) == 0
        capsys.readouterr()
        floors.write_text(json.dumps({"min_pruned_fraction": 0.9999}))
        assert main(["perf", "check", str(bench),
                     "--floors", str(floors)]) == 1
        assert "enum_pruned_fraction" in capsys.readouterr().out

    def test_report_trend_and_flame(self, cache_env, history_env,
                                    tmp_path, capsys):
        bench = self._fig12_bench(tmp_path, capsys)
        assert main(["perf", "record", str(bench), "--rev", "r1"]) == 0
        assert main(["perf", "record", str(bench), "--rev", "r2"]) == 0
        capsys.readouterr()
        flame = tmp_path / "flame.txt"
        assert main(["perf", "report", "--format", "md",
                     "--flame", str(flame), "--bench", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "### fig12" in out
        assert "histogram/risotto" in out
        stacks = flame.read_text().splitlines()
        assert stacks and all(
            line.startswith("fig12;") and line.rsplit(" ", 1)[1]
            .isdigit() for line in stacks)

    def test_report_without_history_fails(self, cache_env,
                                          history_env, capsys):
        assert main(["perf", "report"]) == 1
        assert "no history records" in capsys.readouterr().err

    def test_perf_without_action_usage(self, capsys):
        assert main(["perf"]) == 2
        assert "record,check,report" in capsys.readouterr().err


class TestDelegation:
    def test_obsreport_renders_bench_json(self, cache_env, tmp_path,
                                          capsys):
        bench = tmp_path / "bench.json"
        main(["run", "fig12", "--benchmarks", "histogram",
              "--variants", "qemu,risotto", "--iterations", "40",
              "--workers", "1", "--bench-json", str(bench)])
        capsys.readouterr()
        assert main(["obsreport", str(bench)]) == 0
        assert "fig12" in capsys.readouterr().out

    def test_fuzz_smoke(self, cache_env, capsys):
        code = main(["fuzz", "--seed", "5", "--cases", "2",
                     "--oracles", "staged-vs-naive"])
        assert code == 0
        assert "cases" in capsys.readouterr().out.lower()


class TestDelegatedHelp:
    """Delegated subcommands must surface the *delegate's* help and
    options instead of dying on argparse's REMAINDER quirk
    (bpo-17050: a leading option never matches the remainder)."""

    def test_fuzz_help_shows_delegate_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "repro.fuzz" in out
        assert "--oracles" in out

    def test_obsreport_help_shows_delegate_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["obsreport", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "obsreport" in out

    def test_parser_path_forwards_leading_options(self, cache_env,
                                                  capsys):
        # Exercise the parse_known_args route main() falls back to —
        # a strict parse of a leading option used to die with
        # "unrecognized arguments" at the top level.
        parser = build_parser()
        args, unknown = parser.parse_known_args(
            ["fuzz", "--seed", "5", "--cases", "2",
             "--oracles", "staged-vs-naive"])
        assert args.command == "fuzz"
        forwarded = list(unknown) + list(args.args)
        assert forwarded == ["--seed", "5", "--cases", "2",
                             "--oracles", "staged-vs-naive"]
        from repro.fuzz.__main__ import main as fuzz_main
        assert fuzz_main(forwarded) == 0
        capsys.readouterr()

    def test_unknown_args_still_rejected_elsewhere(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "--bogus-flag"])
        assert excinfo.value.code == 2
        assert "unrecognized arguments" in capsys.readouterr().err


class TestSchemeMatrix:
    def test_schemes_sweep_passes_and_exports(self, cache_env,
                                              tmp_path, capsys):
        bench = tmp_path / "bench_schemes.json"
        code = main(["verify", "--schemes", "qemu,risotto",
                     "--workers", "1", "--bench-json", str(bench)])
        out = capsys.readouterr().out
        assert code == 0
        assert "scheme-matrix" in out
        assert "most-risotto-rmw1al" in out
        payload = json.loads(bench.read_text())
        assert payload["figure"] == "schemes"
        assert payload["extra"]["gate_failures"] == 0
        verdicts = payload["extra"]["verdicts"]
        assert verdicts["most-qemu-rmw1al"]["ok"] is False
        assert verdicts["most-qemu-rmw1al"]["expected_ok"] is False
        assert verdicts["most-risotto-rmw2ff"]["ok"] is True

    def test_negative_controls_keep_their_teeth(self, cache_env,
                                                capsys):
        # The rmo-bare control must stay broken — and the gate must
        # *pass*, because broken is exactly what the family expects.
        code = main(["verify", "--schemes", "rmo-bare",
                     "--workers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "broken" in out

    def test_unknown_scheme_names_family(self, cache_env, capsys):
        with pytest.raises(Exception, match="unknown scheme"):
            main(["verify", "--schemes", "fastest", "--workers", "1"])
