"""Analysis-layer tests: table math and report rendering."""

import pytest

from repro.analysis import (
    BenchRow,
    BenchTable,
    aggregate_sweep,
    figure12_report,
    figure15_report,
    mapping_table_report,
    run_stats_footer,
    speedup_report,
)
from repro.errors import ReproError
from repro.workloads import RunFailure, RunRow, SweepResult


@pytest.fixture
def table():
    t = BenchTable(name="t")
    for bench, variant, cycles, fences in (
            ("alpha", "qemu", 1000, 400),
            ("alpha", "tcg-ver", 900, 300),
            ("alpha", "no-fences", 500, 0),
            ("alpha", "native", 100, 0),
            ("beta", "qemu", 2000, 200),
            ("beta", "tcg-ver", 1900, 150),
            ("beta", "no-fences", 1500, 0),
            ("beta", "native", 300, 0),
    ):
        t.add(BenchRow(benchmark=bench, variant=variant,
                       cycles=cycles, fence_cycles=fences,
                       total_cycles=cycles, checksum=7))
    return t


class TestBenchTable:
    def test_relative_and_speedup(self, table):
        assert table.relative_runtime("alpha", "tcg-ver") == 0.9
        assert table.speedup("alpha", "native") == 10.0

    def test_gains(self, table):
        assert table.gain("alpha", "tcg-ver") == pytest.approx(0.1)
        assert table.average_gain("tcg-ver") == pytest.approx(
            (0.1 + 0.05) / 2)
        assert table.max_gain("tcg-ver") == pytest.approx(0.1)

    def test_fence_share(self, table):
        assert table.rows[("alpha", "qemu")].fence_share == 0.4
        bench, share = table.max_fence_share("qemu")
        assert bench == "alpha" and share == 0.4
        assert table.average_fence_share("qemu") == pytest.approx(0.25)

    def test_benchmarks_and_variants_preserve_order(self, table):
        assert table.benchmarks() == ["alpha", "beta"]
        assert table.variants()[0] == "qemu"

    def test_checksum_consistency(self, table):
        assert table.checksums_consistent("alpha")
        table.add(BenchRow(benchmark="alpha", variant="broken",
                           cycles=1, checksum=9))
        assert not table.checksums_consistent("alpha")

    def test_zero_total_cycles_fence_share(self):
        row = BenchRow(benchmark="x", variant="v", cycles=10)
        assert row.fence_share == 0.0


class TestSparseTable:
    """Regressions for sparse tables (a variant that did not run on
    every benchmark must not silently poison the statistics)."""

    @pytest.fixture
    def sparse(self, table):
        # gamma ran only under qemu: no tcg-ver cell.
        table.add(BenchRow(benchmark="gamma", variant="qemu",
                           cycles=4000, fence_cycles=400,
                           total_cycles=4000, checksum=7))
        return table

    def test_cycles_missing_cell_raises(self, sparse):
        with pytest.raises(ReproError, match="no row for benchmark"):
            sparse.cycles("gamma", "tcg-ver")

    def test_averages_skip_missing_cells(self, sparse):
        # identical to the dense table: gamma contributes no tcg-ver
        # cell, so it must be skipped rather than crash or zero-fill.
        assert sparse.average_gain("tcg-ver") == pytest.approx(
            (0.1 + 0.05) / 2)
        assert sparse.max_gain("tcg-ver") == pytest.approx(0.1)
        assert sparse.average_relative("tcg-ver") == pytest.approx(
            (0.9 + 0.95) / 2)

    def test_fence_share_sees_all_cells_of_variant(self, sparse):
        # gamma has a qemu cell, so fence-share stats include it.
        assert sparse.average_fence_share("qemu") == pytest.approx(
            (0.4 + 0.1 + 0.1) / 3)

    def test_absent_variant_raises_with_inventory(self, table):
        with pytest.raises(ReproError,
                           match=r"no rows for variant 'missing'"):
            table.average_gain("missing")
        with pytest.raises(ReproError, match="variants present"):
            table.average_fence_share("missing")

    def test_no_overlapping_cells_raises(self):
        t = BenchTable(name="t")
        t.add(BenchRow(benchmark="a", variant="qemu", cycles=100))
        t.add(BenchRow(benchmark="b", variant="risotto", cycles=90))
        with pytest.raises(ReproError):
            t.average_gain("risotto")


class TestReports:
    def test_figure12_report_contents(self, table):
        text = figure12_report(table)
        assert "alpha" in text and "beta" in text
        assert "paper: 6.7%" in text
        assert "freqmine" in text  # the paper reference line

    def test_speedup_report(self, table):
        text = speedup_report(table, "title",
                              variants=("tcg-ver", "native"))
        assert "title" in text
        assert "10.00x" in text

    def test_figure15_report(self):
        series = {
            "qemu": [("1-1", 10e6), ("4-1", 5e6)],
            "risotto": [("1-1", 15e6), ("4-1", 5.2e6)],
        }
        text = figure15_report(series)
        assert "1-1" in text and "paper: 48%" in text

    def test_mapping_tables_mention_all_figures(self):
        text = mapping_table_report()
        for needle in ("Figure 2", "Figure 3", "Figure 7",
                       "DMBST; STR", "RMW1_AL"):
            assert needle in text


class TestSweepAggregation:
    @pytest.fixture
    def sweep(self):
        rows = [
            RunRow(benchmark="alpha", variant="qemu", cycles=1000,
                   fence_cycles=400, total_cycles=1000, checksum=7,
                   wall_seconds=0.5, blocks_translated=10,
                   guest_insns_translated=100, block_dispatches=40,
                   chained_dispatches=30, helper_calls=5,
                   opt_folded=3, opt_mem_eliminated=2,
                   opt_fences_merged=1, opt_dead_removed=4),
            RunRow(benchmark="alpha", variant="risotto", cycles=800,
                   fence_cycles=100, total_cycles=1000, checksum=7,
                   wall_seconds=0.25, blocks_translated=12,
                   guest_insns_translated=120, block_dispatches=50,
                   chained_dispatches=45, helper_calls=2,
                   cache_hits=6, cache_misses=2),
        ]
        return SweepResult(rows=rows, wall_seconds=0.6, workers=3)

    def test_aggregate_sweep(self, sweep):
        stats = aggregate_sweep(sweep)
        assert stats.runs == 2
        assert stats.workers == 3
        assert stats.wall_seconds == 0.6
        assert stats.run_seconds == pytest.approx(0.75)
        assert stats.blocks_translated == 22
        assert stats.guest_insns_translated == 220
        assert stats.block_dispatches == 90
        assert stats.chained_dispatches == 75
        assert stats.helper_calls == 7
        assert stats.opt_folded == 3
        assert stats.fence_cycles == 500
        assert stats.total_cycles == 2000
        assert stats.fence_share == pytest.approx(0.25)
        assert stats.chain_rate == pytest.approx(75 / 90)
        assert stats.cache_hit_rate == pytest.approx(0.75)

    def test_aggregate_bare_iterable(self, sweep):
        # Plain lists of rows work too: workers/wall default.
        stats = aggregate_sweep(list(sweep))
        assert stats.runs == 2
        assert stats.workers == 1
        assert stats.wall_seconds == 0.0

    def test_empty_stats_rates_are_zero(self):
        stats = aggregate_sweep([])
        assert stats.fence_share == 0.0
        assert stats.chain_rate == 0.0
        assert stats.cache_hit_rate == 0.0

    def test_from_rows_builds_table(self, sweep):
        table = BenchTable.from_rows("fig", sweep)
        assert table.benchmarks() == ["alpha"]
        assert table.relative_runtime("alpha", "risotto") == \
            pytest.approx(0.8)
        assert table.checksums_consistent("alpha")

    def test_footer_renders_all_sections(self, sweep):
        text = run_stats_footer(sweep, "unit-test stats")
        assert "--- unit-test stats" in text
        assert "runs: 2   workers: 3" in text
        assert "translated: 22 blocks / 220 guest insns" in text
        assert "optimizer: 3 folded" in text
        assert "fence cycles:" in text
        assert "behavior cache: 6 hits / 2 misses" in text

    def test_footer_elides_empty_sections(self):
        rows = [RunRow(benchmark="a", variant="ablation",
                       wall_seconds=0.1)]
        text = run_stats_footer(rows)
        assert "harness stats" in text
        assert "translated:" not in text
        assert "fence cycles:" not in text
        assert "behavior cache:" not in text
        assert "fence cycles by origin:" not in text
        assert "FAILED" not in text


class TestObservabilityFooters:
    """Golden-output tests for the fence-by-origin and failure
    sections added to the harness footer and the Figure 12 report."""

    @pytest.fixture
    def origin_sweep(self):
        rows = [
            RunRow(benchmark="alpha", variant="qemu", cycles=1000,
                   fence_cycles=400, total_cycles=1000, checksum=7,
                   wall_seconds=0.5,
                   fence_origin_cycles={"RMOV->Frr;ld": 300,
                                        "WMOV->Fmw;st": 100}),
            RunRow(benchmark="alpha", variant="risotto", cycles=800,
                   fence_cycles=100, total_cycles=800, checksum=7,
                   wall_seconds=0.25,
                   fence_origin_cycles={"RMOV->ld;Frm": 60,
                                        "fence_merge:strengthen": 40}),
        ]
        failures = [RunFailure(kind="kernel", benchmark="beta",
                               variant="qemu", seed=3,
                               error="ReproError: boom",
                               code="repro")]
        return SweepResult(rows=rows, wall_seconds=0.6, workers=2,
                           failures=failures)

    def test_footer_by_origin_golden(self, origin_sweep):
        text = run_stats_footer(origin_sweep, "origin stats")
        assert "fence cycles by origin:" in text
        # largest bucket first, aligned columns, share of fence cycles
        assert "  RMOV->Frr;ld                      300 (60.0%)" \
            in text
        assert "  WMOV->Fmw;st                      100 (20.0%)" \
            in text
        assert "  RMOV->ld;Frm                       60 (12.0%)" \
            in text
        assert "  fence_merge:strengthen             40 (8.0%)" in text

    def test_footer_failure_lines(self, origin_sweep):
        text = run_stats_footer(origin_sweep)
        assert "FAILED runs: 1" in text
        assert "  kernel:beta/qemu (seed 3): [repro] " \
            "ReproError: boom" in text

    def test_footer_unaccounted_bucket(self):
        rows = [RunRow(benchmark="a", variant="qemu", cycles=100,
                       fence_cycles=50, total_cycles=100,
                       wall_seconds=0.1,
                       fence_origin_cycles={"RMOV->Frr;ld": 30})]
        text = run_stats_footer(rows)
        assert "[unaccounted]" in text
        assert "20" in text

    def test_figure12_by_origin_footer(self, origin_sweep):
        table = BenchTable.from_rows("fig12", origin_sweep)
        text = figure12_report(table)
        assert "fence cycles by origin (qemu):" in text
        assert "fence cycles by origin (risotto):" in text
        qemu_section = text.split("fence cycles by origin (qemu):")[1] \
            .split("fence cycles by origin (risotto):")[0]
        assert "RMOV->Frr;ld" in qemu_section
        assert "RMOV->ld;Frm" not in qemu_section

    def test_aggregate_merges_origins_across_rows(self, origin_sweep):
        stats = aggregate_sweep(origin_sweep)
        assert stats.fence_cycles_by_origin == {
            "RMOV->Frr;ld": 300, "WMOV->Fmw;st": 100,
            "RMOV->ld;Frm": 60, "fence_merge:strengthen": 40}
        assert sum(stats.fence_cycles_by_origin.values()) == \
            stats.fence_cycles
        assert stats.failed_runs == 1
