"""Analysis-layer tests: table math and report rendering."""

import pytest

from repro.analysis import (
    BenchRow,
    BenchTable,
    figure12_report,
    figure15_report,
    mapping_table_report,
    speedup_report,
)


@pytest.fixture
def table():
    t = BenchTable(name="t")
    for bench, variant, cycles, fences in (
            ("alpha", "qemu", 1000, 400),
            ("alpha", "tcg-ver", 900, 300),
            ("alpha", "no-fences", 500, 0),
            ("alpha", "native", 100, 0),
            ("beta", "qemu", 2000, 200),
            ("beta", "tcg-ver", 1900, 150),
            ("beta", "no-fences", 1500, 0),
            ("beta", "native", 300, 0),
    ):
        t.add(BenchRow(benchmark=bench, variant=variant,
                       cycles=cycles, fence_cycles=fences,
                       total_cycles=cycles, checksum=7))
    return t


class TestBenchTable:
    def test_relative_and_speedup(self, table):
        assert table.relative_runtime("alpha", "tcg-ver") == 0.9
        assert table.speedup("alpha", "native") == 10.0

    def test_gains(self, table):
        assert table.gain("alpha", "tcg-ver") == pytest.approx(0.1)
        assert table.average_gain("tcg-ver") == pytest.approx(
            (0.1 + 0.05) / 2)
        assert table.max_gain("tcg-ver") == pytest.approx(0.1)

    def test_fence_share(self, table):
        assert table.rows[("alpha", "qemu")].fence_share == 0.4
        bench, share = table.max_fence_share("qemu")
        assert bench == "alpha" and share == 0.4
        assert table.average_fence_share("qemu") == pytest.approx(0.25)

    def test_benchmarks_and_variants_preserve_order(self, table):
        assert table.benchmarks() == ["alpha", "beta"]
        assert table.variants()[0] == "qemu"

    def test_checksum_consistency(self, table):
        assert table.checksums_consistent("alpha")
        table.add(BenchRow(benchmark="alpha", variant="broken",
                           cycles=1, checksum=9))
        assert not table.checksums_consistent("alpha")

    def test_zero_total_cycles_fence_share(self):
        row = BenchRow(benchmark="x", variant="v", cycles=10)
        assert row.fence_share == 0.0


class TestReports:
    def test_figure12_report_contents(self, table):
        text = figure12_report(table)
        assert "alpha" in text and "beta" in text
        assert "paper: 6.7%" in text
        assert "freqmine" in text  # the paper reference line

    def test_speedup_report(self, table):
        text = speedup_report(table, "title",
                              variants=("tcg-ver", "native"))
        assert "title" in text
        assert "10.00x" in text

    def test_figure15_report(self):
        series = {
            "qemu": [("1-1", 10e6), ("4-1", 5e6)],
            "risotto": [("1-1", 15e6), ("4-1", 5.2e6)],
        }
        text = figure15_report(series)
        assert "1-1" in text and "paper: 48%" in text

    def test_mapping_tables_mention_all_figures(self):
        text = mapping_table_report()
        for needle in ("Figure 2", "Figure 3", "Figure 7",
                       "DMBST; STR", "RMW1_AL"):
            assert needle in text
