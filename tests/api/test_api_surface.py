"""Stability tests for the :mod:`repro.api` facade.

The facade is the one import surface benchmarks, the fuzzer and the
CLI build on, so its shape is pinned: the snapshot test fails on any
accidental rename/removal (extending is fine — update the snapshot
deliberately), and the signature tests enforce the keyword-only
convention on every run function.
"""

import inspect

import pytest

from repro import api

#: The pinned public surface.  Additions are appended deliberately;
#: removals and renames are breaking changes and must not happen
#: silently.
EXPECTED_SURFACE = {
    # run functions
    "run_kernel", "run_library_workload", "run_cas_benchmark",
    "make_engine",
    # sweep harness
    "RunSpec", "RunRow", "RunFailure", "SweepResult", "run_parallel",
    "execute_spec", "default_workers", "deterministic_row",
    # workload building blocks
    "KernelSpec", "CasConfig", "WorkloadResult", "RunResult",
    "ALL_SPECS", "PARSEC_SPECS", "PHOENIX_SPECS", "SPEC_BY_NAME",
    "FIGURE15_CONFIGS", "DATA_BUF",
    "kernel_grid", "library_grid", "cas_grid", "ablation_grid",
    "scheme_grid", "verify_grid",
    # sharded verification / enumeration reduction
    "MODEL_BY_NAME", "FIVE_THREAD_CORPUS", "verify_registry",
    "reduced_behaviors", "enumeration_stats",
    "reset_enumeration_stats",
    # mapping-scheme family (MOST tables + derived schemes)
    "MOST", "FenceScheme", "SOURCE_TABLES", "TARGET_MENUS",
    "SCHEMES", "SCHEME_MAPPINGS", "SCHEME_EXPECTED",
    "derive_scheme", "scheme_mapping", "known_origins",
    "build_libm", "build_libcrypto", "build_libsqlite",
    "standard_libraries", "throughput_from_cycles",
    "gen_x86_program", "gen_arm_program",
    # variants and engine construction
    "VARIANTS", "VARIANT_NAMES", "NATIVE", "resolve_variant",
    "DBTConfig", "DBTEngine", "NativeRunner",
    "BufferMode", "CostModel", "ReproError",
    # tiered JIT (superblock) knobs
    "Tier2Config", "tier2_from_env", "DEFAULT_TIER2_THRESHOLD",
    # typed job surface (the canonical run description)
    "JobSpec", "JobResult", "JOB_SCHEMA", "submit",
    "kernel_job", "library_job", "cas_job",
    # error taxonomy (service boundaries + sweep failures)
    "ErrorInfo", "JobError", "classify_error",
    # cache controls
    "xlat_cache_stats", "xlat_cache_dir", "xlat_cache_enabled",
    "clear_xlat_cache", "reset_xlat_memory", "get_xlat_cache",
    "xlat_cache_namespaces",
    "behavior_cache_stats", "behavior_cache_dir",
    "behavior_cache_enabled", "clear_behavior_cache",
    "behavior_cache_namespaces",
    # performance observatory (bench history + regression sentinel)
    "record_bench", "load_history", "history_dir",
    "figures_in_history", "config_fingerprint", "render_trend",
    "check_payload", "load_floors",
    "collapsed_stacks", "write_collapsed",
}

#: Functions that take the workload positionally and *everything else*
#: keyword-only, with the shared parameter vocabulary.
RUN_FUNCTIONS = ("run_kernel", "run_library_workload",
                 "run_cas_benchmark", "make_engine")

#: The one spelling each concept has across the facade.
CANONICAL_NAMES = {"variant", "n_cores", "seed", "costs",
                   "buffer_mode", "max_steps", "library",
                   "setup_memory", "tier2_threshold"}


class TestSurfaceSnapshot:
    def test_all_matches_snapshot(self):
        assert set(api.__all__) == EXPECTED_SURFACE

    def test_every_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_reexports_share_identity(self):
        # Facade re-exports are the implementation objects, not copies.
        from repro.workloads import RunSpec, run_parallel
        assert api.RunSpec is RunSpec
        assert api.run_parallel is run_parallel


class TestRunFunctionSignatures:
    @pytest.mark.parametrize("name", RUN_FUNCTIONS)
    def test_config_params_are_keyword_only(self, name):
        signature = inspect.signature(getattr(api, name))
        for param in signature.parameters.values():
            if param.name in CANONICAL_NAMES:
                assert param.kind is inspect.Parameter.KEYWORD_ONLY, \
                    f"{name}({param.name}) must be keyword-only"

    @pytest.mark.parametrize("name", RUN_FUNCTIONS)
    def test_variant_is_required(self, name):
        signature = inspect.signature(getattr(api, name))
        variant = signature.parameters["variant"]
        assert variant.default is inspect.Parameter.empty

    def test_variant_rejects_unknown_names(self):
        with pytest.raises(api.ReproError) as excinfo:
            api.make_engine(variant="wasm")
        # The error names every valid variant.
        for name in api.VARIANT_NAMES:
            assert name in str(excinfo.value)

    def test_make_engine_builds_each_variant(self):
        for name in api.VARIANT_NAMES:
            engine = api.make_engine(variant=name, n_cores=1)
            if name == api.NATIVE:
                assert isinstance(engine, api.NativeRunner)
            else:
                assert isinstance(engine, api.DBTEngine)
                assert engine.config is api.VARIANTS[name]


class TestBenchmarkAndFuzzUseTheFacade:
    def test_no_private_workload_imports_left(self):
        # The migration contract: benchmarks/ and the fuzzer reach the
        # run surface only through repro.api.
        import pathlib
        roots = [
            pathlib.Path(__file__).parents[2] / "benchmarks",
            pathlib.Path(api.__file__).parent / "fuzz",
        ]
        offenders = []
        for root in roots:
            for path in sorted(root.glob("*.py")):
                text = path.read_text()
                if "workloads.runner" in text or \
                        "from repro.workloads import" in text or \
                        "from ..workloads.runner import" in text:
                    offenders.append(str(path))
        assert not offenders, offenders
