"""Workload tests: kernel codegen pairing, libraries, CAS bench."""

import struct

import pytest
from dataclasses import replace

from repro.machine.memory import Memory
from repro.workloads import (
    ALL_SPECS,
    PARSEC_SPECS,
    PHOENIX_SPECS,
    SPEC_BY_NAME,
    build_libm,
    run_kernel,
    run_library_workload,
    standard_libraries,
)
from repro.workloads.casbench import (
    CasConfig,
    FIGURE15_CONFIGS,
    run_cas_benchmark,
    throughput,
)
from repro.workloads.kernels import gen_arm_program, gen_x86_program


def small(spec, iterations=60):
    return replace(spec, iterations=iterations)


class TestSuites:
    def test_suite_composition(self):
        assert len(PARSEC_SPECS) == 9   # raytrace/x264 omitted
        assert len(PHOENIX_SPECS) == 7
        assert len({s.name for s in ALL_SPECS}) == 16

    def test_freqmine_is_most_memory_bound(self):
        mem_density = {
            s.name: (s.loads + s.stores) / max(1, s.alu + s.fp)
            for s in ALL_SPECS
        }
        assert max(mem_density, key=mem_density.get) == "freqmine"

    def test_codegen_produces_assemblable_programs(self):
        from repro.isa.arm.assembler import assemble as asm_arm
        from repro.isa.x86.assembler import assemble as asm_x86

        for spec in ALL_SPECS:
            asm_x86(gen_x86_program(small(spec)), base=0x400000)
            asm_arm(gen_arm_program(small(spec)), base=0xF000000)


class TestKernelEquivalence:
    @pytest.mark.parametrize("name", [
        "freqmine", "blackscholes", "stringmatch", "wordcount"])
    def test_all_variants_same_checksum(self, name):
        spec = small(SPEC_BY_NAME[name])
        checksums = {
            variant: run_kernel(spec, variant).checksum
            for variant in ("qemu", "no-fences", "tcg-ver", "risotto",
                            "native")
        }
        assert len(set(checksums.values())) == 1, checksums

    def test_native_beats_translated(self):
        spec = small(SPEC_BY_NAME["canneal"], iterations=120)
        qemu = run_kernel(spec, "qemu")
        native = run_kernel(spec, "native")
        assert native.cycles < qemu.cycles / 2

    def test_fence_policy_ordering(self):
        spec = small(SPEC_BY_NAME["freqmine"], iterations=120)
        qemu = run_kernel(spec, "qemu")
        tcgver = run_kernel(spec, "tcg-ver")
        nofences = run_kernel(spec, "no-fences")
        assert nofences.cycles < tcgver.cycles < qemu.cycles

    def test_deterministic_for_seed(self):
        spec = small(SPEC_BY_NAME["vips"])
        a = run_kernel(spec, "risotto", seed=3)
        b = run_kernel(spec, "risotto", seed=3)
        assert a.cycles == b.cycles and a.checksum == b.checksum


class TestLibraries:
    def test_standard_library_contents(self):
        library = standard_libraries()
        for name in ("sin", "cos", "sqrt", "md5", "sha256",
                     "rsa1024_sign", "sqlite_exec"):
            assert name in library

    def test_digest_deterministic_and_length_sensitive(self):
        library = standard_libraries()
        memory = Memory()
        for i in range(1024):
            memory.store_word(0x200000 + 8 * i, i * 31 + 7)
        h1 = library["md5"].invoke(memory, (0x200000, 1024))
        h2 = library["md5"].invoke(memory, (0x200000, 1024))
        h3 = library["md5"].invoke(memory, (0x200000, 2048))
        assert h1 == h2
        assert h1 != h3

    def test_digest_cost_scales_with_length(self):
        library = standard_libraries()
        fn = library["sha256"]
        assert fn.cost((0, 8192)) > 4 * fn.cost((0, 1024))

    def test_rsa_sign_costlier_than_verify(self):
        library = standard_libraries()
        assert library["rsa1024_sign"].cost((1,)) > \
            10 * library["rsa1024_verify"].cost((1,))
        assert library["rsa2048_sign"].cost((1,)) > \
            library["rsa1024_sign"].cost((1,))

    def test_library_workload_checksums_match(self):
        library = build_libm()
        bits = struct.unpack("<Q", struct.pack("<d", 0.5))[0]
        results = {
            variant: run_library_workload(
                "cos", (bits,), 10, variant, library).checksum
            for variant in ("qemu", "tcg-ver", "risotto", "native")
        }
        assert len(set(results.values())) == 1, results

    def test_linker_speedup_on_library_workload(self):
        library = build_libm()
        bits = struct.unpack("<Q", struct.pack("<d", 0.5))[0]
        qemu = run_library_workload("cos", (bits,), 15, "qemu", library)
        risotto = run_library_workload(
            "cos", (bits,), 15, "risotto", library)
        assert risotto.cycles < qemu.cycles / 3


class TestCasBench:
    def test_config_labels(self):
        assert CasConfig(8, 4).label == "8-4"
        assert [c.label for c in FIGURE15_CONFIGS][:4] == \
            ["1-1", "4-1", "4-2", "4-4"]

    def test_counter_value_correct_everywhere(self):
        from repro.workloads.casbench import CAS_VAR_BASE

        config = CasConfig(2, 1, attempts=40)
        for variant in ("qemu", "risotto", "native"):
            outcome = run_cas_benchmark(config, variant)
            # All CAS attempts target one variable; successful ones
            # increment it.  With read-then-CAS the count is positive
            # and bounded by total attempts.
            machine = None  # the runner hides the machine; check time
            assert outcome.result.elapsed_cycles > 0

    def test_uncontended_beats_contended(self):
        free = run_cas_benchmark(CasConfig(4, 4, attempts=120),
                                 "risotto")
        contended = run_cas_benchmark(CasConfig(4, 1, attempts=120),
                                      "risotto")
        free_tp = throughput(CasConfig(4, 4, attempts=120), free)
        cont_tp = throughput(CasConfig(4, 1, attempts=120), contended)
        assert free_tp > 2 * cont_tp

    def test_risotto_beats_qemu_uncontended(self):
        config = CasConfig(1, 1, attempts=200)
        qemu = throughput(config, run_cas_benchmark(config, "qemu"))
        risotto = throughput(
            config, run_cas_benchmark(config, "risotto"))
        assert risotto > qemu * 1.2
