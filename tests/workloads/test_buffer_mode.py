"""Regression: the store-buffer mode must reach every engine.

``NativeRunner`` used to ignore its caller's buffer mode and build the
machine with the default — so "native" bars in a TSO or SC sweep
silently ran under WEAK buffering while every DBT variant honoured the
spec.  These tests pin the whole path: engine constructors, the
``_make_engine`` parity guard, the workload entry points and the
``RunSpec`` plumbing of the parallel harness.
"""

import dataclasses

import pytest

from repro.dbt import DBTEngine, NativeRunner, VARIANTS
from repro.machine.weakmem import BufferMode
from repro.workloads import RunSpec, execute_spec
from repro.workloads.kernels import KernelSpec
from repro.workloads.runner import ALL_VARIANTS, _make_engine, \
    run_kernel

MODES = (BufferMode.TSO, BufferMode.WEAK, BufferMode.NONE)

#: Small enough for a per-mode end-to-end run.
TINY = KernelSpec("tiny", loads=2, stores=1, alu=2, fp=1,
                  iterations=20, threads=2, working_set=64)


class TestEngineConstructors:
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_native_runner_honours_buffer_mode(self, mode):
        # The headline regression: NativeRunner built its Machine
        # without forwarding buffer_mode, so this failed for TSO/NONE.
        runner = NativeRunner(n_cores=2, buffer_mode=mode)
        assert runner.machine.buffer_mode is mode
        for core in runner.machine.cores:
            assert core.buffer.mode is mode

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_dbt_engine_honours_buffer_mode(self, mode):
        engine = DBTEngine(VARIANTS["risotto"], n_cores=2,
                           buffer_mode=mode)
        assert engine.machine.buffer_mode is mode


class TestMakeEngineParity:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_every_variant_gets_the_requested_mode(self, variant, mode):
        engine = _make_engine(variant, n_cores=2, seed=7, costs=None,
                              buffer_mode=mode)
        assert engine.machine.buffer_mode is mode


class TestWorkloadEntryPoints:
    def test_run_kernel_native_runs_under_tso(self):
        # End to end: the kernel actually executes on a TSO machine.
        outcome = run_kernel(TINY, "native",
                             buffer_mode=BufferMode.TSO)
        assert outcome.result.exit_code == 0

    def test_native_and_dbt_modes_agree_per_spec(self):
        # Same checksum whatever the buffer mode — the kernels are
        # data-race-free — so a silently defaulted mode is invisible in
        # results and only these structural checks catch it.
        native = run_kernel(TINY, "native",
                            buffer_mode=BufferMode.NONE)
        weak = run_kernel(TINY, "native",
                          buffer_mode=BufferMode.WEAK)
        assert native.checksum == weak.checksum


class TestRunSpecPlumbing:
    def test_default_mode_is_weak(self):
        spec = RunSpec(kind="kernel", benchmark="tiny", kernel=TINY)
        assert spec.buffer_mode is BufferMode.WEAK

    def test_execute_spec_forwards_mode(self, monkeypatch):
        captured = {}

        def spy_run_kernel(kernel, variant, **kw):
            captured.update(kw, kernel=kernel, variant=variant)
            return run_kernel(kernel, variant, **kw)

        monkeypatch.setattr("repro.workloads.parallel.run_kernel",
                            spy_run_kernel)
        spec = RunSpec(kind="kernel", benchmark="tiny", kernel=TINY,
                       variant="native",
                       buffer_mode=BufferMode.TSO)
        row = execute_spec(spec)
        assert captured["buffer_mode"] is BufferMode.TSO
        assert row.exit_code == 0

    def test_spec_is_still_picklable_with_mode(self):
        import pickle
        spec = RunSpec(kind="kernel", benchmark="tiny", kernel=TINY,
                       buffer_mode=BufferMode.TSO)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.buffer_mode is BufferMode.TSO
        assert clone == spec
