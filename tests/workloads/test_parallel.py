"""Tests for the parallel evaluation harness.

The core contract: a sweep's result rows are bit-identical for any
worker count and come back in submission order, because every run
builds a fresh machine seeded by its own spec.
"""

import dataclasses
import pickle

import pytest

from repro.errors import ReproError
from repro.workloads import (
    RunSpec,
    SweepResult,
    ablation_grid,
    cas_grid,
    default_workers,
    execute_spec,
    kernel_grid,
    library_grid,
    run_parallel,
    verify_grid,
)
from repro.workloads.casbench import CasConfig
from repro.workloads.kernels import KernelSpec
from repro.workloads.parallel import LIBRARY_BUILDERS, deterministic_row

#: A tiny kernel so each worker run stays under a second.
TINY = KernelSpec("tiny", loads=2, stores=1, alu=2, fp=1,
                  iterations=40, threads=2, working_set=64)


class TestRunSpec:
    def test_pickle_roundtrip(self):
        grid = kernel_grid((TINY,), ("qemu", "risotto"))
        for spec in grid:
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec

    def test_kernel_grid_order_is_benchmark_major(self):
        other = dataclasses.replace(TINY, name="other")
        grid = kernel_grid((TINY, other), ("qemu", "risotto"))
        assert [(s.benchmark, s.variant) for s in grid] == [
            ("tiny", "qemu"), ("tiny", "risotto"),
            ("other", "qemu"), ("other", "risotto"),
        ]

    def test_library_grid_carries_case_fields(self):
        cases = {"exp-small": ("exp", (7,), 3, None)}
        (spec,) = library_grid(cases, "libm", ("risotto",))
        assert spec.kind == "library"
        assert spec.library == "libm"
        assert spec.function == "exp"
        assert spec.args == (7,)
        assert spec.calls == 3


class TestExecuteSpec:
    def test_unknown_kind_raises(self):
        with pytest.raises(ReproError, match="unknown run-spec kind"):
            execute_spec(RunSpec(kind="nonsense", benchmark="x"))

    def test_unknown_library_raises(self):
        spec = RunSpec(kind="library", benchmark="x", library="libzzz",
                       function="exp", args=(1,), calls=1)
        with pytest.raises(ReproError, match="unknown library"):
            execute_spec(spec)

    def test_missing_kernel_raises(self):
        with pytest.raises(ReproError, match="kernel spec missing"):
            execute_spec(RunSpec(kind="kernel", benchmark="x"))

    def test_kernel_row_carries_observability(self):
        (spec,) = kernel_grid((TINY,), ("risotto",))
        row = execute_spec(spec)
        assert row.benchmark == "tiny"
        assert row.variant == "risotto"
        assert row.cycles > 0
        assert row.wall_seconds > 0
        assert row.blocks_translated > 0
        assert row.block_dispatches >= row.blocks_translated
        assert 0.0 <= row.fence_share < 1.0

    def test_library_registries_cover_figure_needs(self):
        assert {"libm", "libcrypto", "libsqlite", "standard"} <= \
            set(LIBRARY_BUILDERS)


class TestDeterminism:
    @pytest.fixture(scope="class")
    def grid(self):
        return kernel_grid((TINY,),
                           ("qemu", "tcg-ver", "risotto", "native"))

    @pytest.fixture(scope="class")
    def serial(self, grid):
        return run_parallel(grid, workers=1)

    def test_serial_pool_is_degenerate(self, serial, grid):
        assert serial.workers == 1
        assert len(serial) == len(grid)

    def test_worker_count_does_not_change_rows(self, serial, grid):
        fanned = run_parallel(grid, workers=3)
        assert fanned.workers == 3
        for left, right in zip(serial, fanned):
            # wall time and translation-cache warmth are the two
            # legitimately layout-dependent quantities.
            assert deterministic_row(left) == deterministic_row(right)

    def test_rows_follow_submission_order(self, serial, grid):
        assert [(r.benchmark, r.variant) for r in serial] == \
            [(s.benchmark, s.variant) for s in grid]

    def test_repeated_sweeps_are_identical(self, serial, grid):
        again = run_parallel(grid, workers=1)
        for left, right in zip(serial, again):
            assert deterministic_row(left) == deterministic_row(right)


class TestWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert default_workers() == 5

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ReproError, match="REPRO_WORKERS"):
            default_workers()

    def test_unset_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() >= 1

    def test_pool_clamped_to_spec_count(self):
        grid = kernel_grid((TINY,), ("risotto",))
        sweep = run_parallel(grid, workers=8)
        assert sweep.workers == 1  # one spec -> degenerate pool

    def test_empty_sweep(self):
        sweep = run_parallel((), workers=4)
        assert len(sweep) == 0
        assert isinstance(sweep, SweepResult)


class TestOtherKinds:
    def test_cas_rows(self):
        config = CasConfig(threads=2, variables=2, attempts=30)
        sweep = run_parallel(cas_grid((config,), ("qemu", "risotto")),
                             workers=2)
        rows = list(sweep)
        assert [r.variant for r in rows] == ["qemu", "risotto"]
        assert all(r.cycles > 0 for r in rows)
        assert all(r.benchmark == "2-2" for r in rows)

    def test_ablation_rows_carry_cache_stats(self):
        label = "drop trailing Frm after loads"
        sweep = run_parallel(ablation_grid((label,)), workers=1)
        (row,) = list(sweep)
        assert row.benchmark == label
        assert row.payload, "ablation should break litmus tests"
        assert row.cache_misses > 0

    def test_unknown_ablation_label(self):
        from repro.errors import ReproError
        sweep_specs = ablation_grid(("no such ablation",))
        sweep = run_parallel(sweep_specs, workers=1)
        assert not sweep.rows
        (failure,) = sweep.failures
        assert failure.kind == "ablation"
        assert failure.benchmark == "no such ablation"
        assert "no such ablation" in failure.error
        with pytest.raises(ReproError):
            run_parallel(sweep_specs, workers=1, strict=True)


class TestVerifyKind:
    """Sharded verification cells: determinism and digest agreement."""

    NAMES = ("MP", "SB+mfences", "CoWR", "LB-IR")

    def test_sharded_matches_serial(self):
        grid = verify_grid(tests=self.NAMES, models=("x86-tso",))
        serial = run_parallel(grid, workers=1, strict=True)
        fanned = run_parallel(grid, workers=2, strict=True)
        for left, right in zip(serial, fanned):
            assert deterministic_row(left) == deterministic_row(right)
        assert [r.benchmark for r in serial] == list(self.NAMES)

    def test_digests_agree_across_reductions(self):
        per_mode = {}
        for reduction in ("dpor", "staged", "naive"):
            grid = verify_grid(tests=self.NAMES[:2],
                               models=("x86-tso",),
                               reduction=reduction)
            sweep = run_parallel(grid, workers=1, strict=True)
            per_mode[reduction] = [
                (row.benchmark, row.payload) for row in sweep
            ]
        assert per_mode["dpor"] == per_mode["staged"]
        assert per_mode["dpor"] == per_mode["naive"]

    def test_rows_carry_enumeration_accounting(self):
        (spec,) = verify_grid(tests=("MP",), models=("x86-tso",))
        row = execute_spec(spec)
        assert row.variant == "x86-tso/dpor"
        assert row.enum_candidates_naive > 0
        assert row.enum_consistent > 0
        digest, count = row.payload
        assert len(digest) == 16 and count > 0

    def test_unknown_litmus_test_raises(self):
        (spec,) = verify_grid(tests=("no-such-litmus",),
                              models=("x86-tso",))
        with pytest.raises(ReproError, match="no-such-litmus"):
            execute_spec(spec)

    def test_unknown_model_raises(self):
        (spec,) = verify_grid(tests=("MP",), models=("pdp11",))
        with pytest.raises(ReproError, match="pdp11"):
            execute_spec(spec)

    def test_failures_are_collected_not_raised(self):
        grid = verify_grid(tests=("MP", "no-such-litmus"),
                           models=("x86-tso",))
        sweep = run_parallel(grid, workers=2)
        assert len(sweep.rows) == 1
        (failure,) = sweep.failures
        assert failure.kind == "verify"
        assert failure.benchmark == "no-such-litmus"
