"""Property-based tests for the store-buffer drain semantics.

The WEAK-mode buffer may drain out of order across locations, but two
invariants must survive *every* drain schedule:

* **DMBST** — entries pushed after a barrier marker never reach memory
  before an entry pushed before it;
* **coherence** — same-location entries drain in push order.

Hypothesis drives arbitrary push/barrier programs and arbitrary drain
schedules through the buffer and checks the committed write order; a
stress-litmus section then runs DMBST-emitting mapped programs on the
full machine and compares against the axiomatic Arm model.
"""

from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ARM
from repro.core import litmus_library as L
from repro.core import mappings as M
from repro.core.enumerate import behaviors
from repro.machine.litmus import run_stress
from repro.machine.weakmem import BufferMode, StoreBuffer

ADDRS = (4096, 4104, 4112)

#: A buffer program: each element is an address to store to, or None
#: for a DMBST barrier.  Values are assigned serially, so every push
#: is unique and the commit log reconstructs push identity.
programs = st.lists(
    st.one_of(st.sampled_from(ADDRS), st.none()),
    min_size=1, max_size=12,
)


class _CommitLog:
    """Memory stand-in that records the order stores hit it."""

    def __init__(self):
        self.commits: list[tuple[int, int]] = []

    def store_word(self, addr: int, value: int) -> None:
        self.commits.append((addr, value))


def _run_program(ops, seed: int, drain_all_tail: bool = False):
    """Push the program, drain it fully, return (pushes, commits).

    ``pushes`` maps the serial value of each store to its barrier
    group — the number of DMBST markers pushed before it.
    """
    buffer = StoreBuffer(mode=BufferMode.WEAK)
    log = _CommitLog()
    rng = Random(seed)
    group: dict[int, int] = {}
    addr_of: dict[int, int] = {}
    barriers = 0
    for serial, op in enumerate(ops):
        if op is None:
            buffer.barrier()
            barriers += 1
        else:
            buffer.push(op, serial)
            group[serial] = barriers
            addr_of[serial] = op
    if drain_all_tail:
        # A random drain_one prefix, then a DMBFF-style flush.
        for _ in range(rng.randrange(len(ops) + 1)):
            if not buffer.drain_one(log, rng):
                break
        buffer.drain_all(log)
    else:
        while buffer.drain_one(log, rng):
            pass
    assert buffer.pending() == 0
    return group, addr_of, log.commits


@settings(max_examples=200, deadline=None)
@given(ops=programs, seed=st.integers(0, 2**16))
def test_dmbst_orders_cross_barrier_stores(ops, seed):
    group, _, commits = _run_program(ops, seed)
    assert len(commits) == len(group)
    committed_groups = [group[val] for _, val in commits]
    # No post-barrier store before a pre-barrier one: the barrier-group
    # sequence of the commit log must be non-decreasing.
    assert committed_groups == sorted(committed_groups), (
        f"barrier violated: program {ops}, commit groups "
        f"{committed_groups}"
    )


@settings(max_examples=200, deadline=None)
@given(ops=programs, seed=st.integers(0, 2**16))
def test_same_location_drains_in_push_order(ops, seed):
    group, addr_of, commits = _run_program(ops, seed)
    for addr in ADDRS:
        committed = [val for a, val in commits if a == addr]
        pushed = [val for val in sorted(group) if addr_of[val] == addr]
        assert committed == pushed


@settings(max_examples=100, deadline=None)
@given(ops=programs, seed=st.integers(0, 2**16))
def test_invariants_survive_drain_all_flush(ops, seed):
    group, addr_of, commits = _run_program(ops, seed,
                                           drain_all_tail=True)
    committed_groups = [group[val] for _, val in commits]
    assert committed_groups == sorted(committed_groups)
    for addr in ADDRS:
        committed = [val for a, val in commits if a == addr]
        pushed = [val for val in sorted(group) if addr_of[val] == addr]
        assert committed == pushed


@settings(max_examples=200, deadline=None)
@given(ops=programs, seed=st.integers(0, 2**16))
def test_tso_drains_strictly_fifo(ops, seed):
    """A TSO buffer is a plain FIFO queue: whatever drain schedule the
    rng asks for, stores reach memory in exact push order — across
    addresses, not just per address."""
    buffer = StoreBuffer(mode=BufferMode.TSO)
    log = _CommitLog()
    rng = Random(seed)
    pushed = []
    for serial, op in enumerate(ops):
        if op is None:
            buffer.barrier()
        else:
            buffer.push(op, serial)
            pushed.append((op, serial))
    while buffer.drain_one(log, rng):
        pass
    assert buffer.pending() == 0
    assert log.commits == pushed


@settings(max_examples=100, deadline=None)
@given(ops=programs)
def test_forwarding_sees_latest_own_store(ops):
    buffer = StoreBuffer(mode=BufferMode.WEAK)
    latest: dict[int, int] = {}
    for serial, op in enumerate(ops):
        if op is None:
            buffer.barrier()
        else:
            buffer.push(op, serial)
            latest[op] = serial
    for addr in ADDRS:
        assert buffer.forward(addr) == latest.get(addr)


class TestDmbstStressVsAxiomaticModel:
    """Machine runs of DMBST-emitting programs stay inside the
    axiomatic Arm envelope (Risotto's WMOV lowering is Fww; st ->
    DMBST; STR, so these programs exercise the barrier marker on the
    real drain path, not just the unit buffer)."""

    def _observed_subset(self, test):
        prog = M.risotto_x86_to_arm_rmw1.apply(test.program)
        observed = run_stress(prog, iterations=96, seeds=range(6))
        allowed = behaviors(prog, ARM)
        stray = [o for o in observed if o not in allowed]
        assert not stray, (
            f"{test.name}: machine produced outcomes the Arm model "
            f"forbids: {stray}"
        )

    def test_mp_dmbst_observed_subset(self):
        self._observed_subset(L.MP)

    def test_2plus2w_dmbst_observed_subset(self):
        self._observed_subset(L.W2PLUS2)

    def test_mp_store_side_never_reorders(self):
        # With DMBST between the two stores, the machine must never
        # commit Y=1 before X=1 — the weak MP outcome needs exactly
        # that reordering (loads execute in order operationally).
        from repro.core.litmus_library import outcome, shows
        prog = M.risotto_x86_to_arm_rmw1.apply(L.MP.program)
        observed = run_stress(prog, iterations=128, seeds=range(8))
        assert not shows(observed, outcome(T1_a=1, T1_b=0))
