"""Edge cases of the litmus stress harness and verifier reporting."""

import pytest

from repro.core import ARM, TCG, X86, Arch, Mode, Program, RmwFlavor
from repro.core import litmus_library as L
from repro.core import mappings as M
from repro.core.litmus_library import R, W, outcome, shows
from repro.core.program import Load, Rmw, Store
from repro.core.verifier import check_corpus, check_mapping
from repro.errors import MachineError
from repro.machine.litmus import compile_thread, _collect_layout, run_stress


def arm_prog(*threads):
    return Program("p", Arch.ARM, tuple(threads))


class TestHarnessCompilation:
    def test_register_stores_rejected(self):
        prog = arm_prog((R("a", "X"), Store("Y", "a")))
        with pytest.raises(MachineError):
            run_stress(prog, iterations=2, seeds=range(1))

    def test_tcg_rmw_rejected(self):
        prog = arm_prog((Rmw("X", 0, 1, RmwFlavor.TCG),))
        with pytest.raises(MachineError):
            run_stress(prog, iterations=2, seeds=range(1))

    def test_acquire_release_modes_compile(self):
        prog = arm_prog(
            (Store("X", 1, mode=Mode.REL),),
            (Load("a", "X", mode=Mode.ACQ),
             Load("b", "X", mode=Mode.ACQ_PC)),
        )
        observed = run_stress(prog, iterations=8, seeds=range(2))
        assert observed  # compiles and runs

    def test_lxsx_rmw_compiles_and_runs(self):
        prog = arm_prog(
            (Rmw("X", 0, 1, RmwFlavor.LXSX, acq=True, rel=True,
                 out="a"),),
        )
        observed = run_stress(prog, iterations=8, seeds=range(2))
        assert shows(observed, outcome(X=1))

    def test_layout_assigns_distinct_bases(self):
        prog = arm_prog((R("a", "X"), R("b", "Y")))
        layout = _collect_layout(prog)
        assert layout.loc_base("X") != layout.loc_base("Y")
        assert layout.res_base(0, "a") != layout.res_base(0, "b")

    def test_compiled_thread_has_barrier_and_phase(self):
        prog = arm_prog((W("X", 1),))
        asm = compile_thread(prog, 0, _collect_layout(prog), 4)
        assert "ldaddal" in asm   # sense barrier
        assert "phase" in asm     # phase sweep


class TestVerifierReporting:
    def test_verdict_str_mentions_witness(self):
        verdict = check_mapping(L.MPQ, M.qemu_x86_to_arm_gcc10,
                                X86, ARM)
        text = str(verdict)
        assert "BROKEN" in text and "forbidden" in text

    def test_ok_verdict_str(self):
        verdict = check_mapping(L.MP, M.risotto_x86_to_arm_rmw1,
                                X86, ARM)
        assert "OK" in str(verdict)

    def test_corpus_report_str(self):
        report = check_corpus(
            (L.MP, L.SB), M.risotto_x86_to_tcg, X86, TCG)
        text = str(report)
        assert "all tests pass" in text
        assert "MP" in text

    def test_corpus_report_failures_str(self):
        report = check_corpus(
            (L.MP,), M.nofences_x86_to_arm, X86, ARM)
        assert "broken" in str(report)
        assert report.failures
