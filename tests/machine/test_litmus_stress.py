"""Operational-vs-axiomatic cross-validation.

The store-buffer machine must (a) never exhibit an outcome the
axiomatic Arm model forbids, and (b) actually exhibit the canonical
weak behaviours when the mapping leaves them unfenced — the paper's
motivation (Section 2.1) made operational.
"""

import pytest

from repro.core import ARM
from repro.core import litmus_library as L
from repro.core import mappings as M
from repro.core.enumerate import behaviors
from repro.core.litmus_library import outcome, shows
from repro.errors import MachineError
from repro.machine.litmus import run_stress
from repro.machine.weakmem import BufferMode

WEAK_MP = outcome(T1_a=1, T1_b=0)
WEAK_SB = outcome(T0_a=0, T1_b=0)


def stress(program, **kw):
    kw.setdefault("iterations", 96)
    kw.setdefault("seeds", range(6))
    return run_stress(program, **kw)


class TestWeakBehavioursAppear:
    def test_mp_reorders_without_fences(self):
        prog = M.nofences_x86_to_arm.apply(L.MP.program)
        assert shows(stress(prog, iterations=128, seeds=range(8)),
                     WEAK_MP)

    def test_sb_buffering_visible_even_under_risotto(self):
        # TSO allows a=b=0, so the verified mapping must NOT forbid it.
        prog = M.risotto_x86_to_arm_rmw1.apply(L.SB.program)
        assert shows(stress(prog), WEAK_SB)


class TestMappingsForbidWeakOutcomes:
    @pytest.mark.parametrize("mapping", [
        M.risotto_x86_to_arm_rmw1,
        M.risotto_x86_to_arm_rmw2,
        M.qemu_x86_to_arm_gcc10,
        M.armcats_intended,
    ], ids=["risotto-rmw1", "risotto-rmw2", "qemu", "armcats"])
    def test_mp_weak_outcome_never_appears(self, mapping):
        prog = mapping.apply(L.MP.program)
        assert not shows(stress(prog), WEAK_MP)

    def test_sb_mfence_weak_outcome_never_appears(self):
        prog = M.risotto_x86_to_arm_rmw1.apply(L.SB_MFENCE.program)
        assert not shows(stress(prog), WEAK_SB)


class TestSoundnessAgainstAxiomaticModel:
    @pytest.mark.parametrize("test", [
        L.MP, L.SB, L.SB_MFENCE, L.MP_MFENCE, L.W2PLUS2,
    ], ids=lambda t: t.name)
    @pytest.mark.parametrize("mapping", [
        M.risotto_x86_to_arm_rmw1, M.nofences_x86_to_arm,
    ], ids=["risotto", "nofences"])
    def test_observed_subset_of_allowed(self, test, mapping):
        prog = mapping.apply(test.program)
        observed = stress(prog, iterations=64, seeds=range(4))
        allowed = behaviors(prog, ARM)
        stray = [o for o in observed if o not in allowed]
        assert not stray, f"machine produced forbidden outcomes: {stray}"

    def test_rmw_program_observed_subset(self):
        prog = M.risotto_x86_to_arm_rmw1.apply(L.SBAL.program)
        observed = stress(prog, iterations=48, seeds=range(4))
        allowed = behaviors(prog, ARM)
        assert all(o in allowed for o in observed)
        # The forbidden SBAL outcome never shows operationally either.
        assert not shows(observed, outcome(X=1, Y=1, T0_a=0, T1_b=0))

    def test_rmw2_program_observed_subset(self):
        prog = M.risotto_x86_to_arm_rmw2.apply(L.SBAL.program)
        observed = stress(prog, iterations=48, seeds=range(4))
        assert not shows(observed, outcome(X=1, Y=1, T0_a=0, T1_b=0))


class TestTsoBufferMode:
    def test_tso_mode_forbids_mp_reordering(self):
        # FIFO buffers: MP's weak outcome needs non-FIFO drain.
        prog = M.nofences_x86_to_arm.apply(L.MP.program)
        observed = stress(prog, iterations=128, seeds=range(8),
                          buffer_mode=BufferMode.TSO)
        assert not shows(observed, WEAK_MP)

    def test_tso_mode_still_shows_sb(self):
        prog = M.nofences_x86_to_arm.apply(L.SB.program)
        observed = stress(prog, iterations=128, seeds=range(8),
                          buffer_mode=BufferMode.TSO)
        assert shows(observed, WEAK_SB)


class TestHarnessErrors:
    def test_requires_arm_program(self):
        with pytest.raises(MachineError):
            run_stress(L.MP.program)  # x86-level program

    def test_spurious_stxr_failures_still_converge(self):
        from repro.machine import Machine
        from repro.isa.arm import assemble

        machine = Machine(n_cores=1, spurious_failure_rate=0.5,
                          track_coherence=False, seed=3)
        asm = assemble("""
            mov x1, #4096
        retry:
            ldxr x0, [x1]
            add x0, x0, #1
            stxr x2, x0, [x1]
            cbnz x2, retry
            hlt
        """, base=0x10000)
        machine.memory.add_image(asm.base, asm.code)
        machine.core(0).start(asm.base)
        machine.run()
        assert machine.memory.load_word(4096) == 1
