"""Machine-level tests: memory, store buffers, core semantics, timing."""

import pytest
from random import Random

from repro.errors import MachineError
from repro.isa.arm import assemble
from repro.machine import (
    ArmCore,
    BufferMode,
    CoherenceTracker,
    CostModel,
    Machine,
    Memory,
    StoreBuffer,
    cond_index,
)


def run_single(source, costs=None, buffer_mode=BufferMode.NONE,
               regs=None):
    machine = Machine(n_cores=1, buffer_mode=buffer_mode,
                      costs=costs or CostModel(),
                      track_coherence=False)
    asm = assemble(source, base=0x10000)
    machine.memory.add_image(asm.base, asm.code)
    core = machine.core(0)
    if regs:
        core.regs.update(regs)
    core.start(asm.base)
    machine.run()
    return core, machine


class TestMemory:
    def test_default_zero(self):
        assert Memory().load_word(0x1234) == 0

    def test_store_load(self):
        memory = Memory()
        memory.store_word(0x100, 42)
        assert memory.load_word(0x100) == 42

    def test_image_fetch(self):
        memory = Memory()
        memory.add_image(0x1000, b"\x01\x02\x03")
        assert memory.read_bytes(0x1001, 2) == b"\x02\x03"

    def test_unmapped_fetch_faults(self):
        with pytest.raises(MachineError):
            Memory().read_bytes(0x1000, 4)

    def test_overlapping_images_rejected(self):
        memory = Memory()
        memory.add_image(0x1000, b"\x00" * 16)
        with pytest.raises(MachineError):
            memory.add_image(0x1008, b"\x00" * 16)

    def test_image_data_readable_as_words(self):
        memory = Memory()
        memory.add_image(0x1000, (1234).to_bytes(8, "little"))
        assert memory.load_word(0x1000) == 1234

    def test_writes_shadow_images(self):
        memory = Memory()
        memory.add_image(0x1000, (1).to_bytes(8, "little"))
        memory.store_word(0x1000, 2)
        assert memory.load_word(0x1000) == 2


class TestCoherence:
    def test_first_touch_free(self):
        tracker = CoherenceTracker()
        assert tracker.on_write(0, 0x100) == 0
        assert tracker.on_write(0, 0x108) == 0  # same line

    def test_ownership_transfer_costs(self):
        tracker = CoherenceTracker()
        tracker.on_write(0, 0x100)
        assert tracker.on_write(1, 0x100) == tracker.transfer_cost
        assert tracker.owner_of(0x100) == 1

    def test_read_shares(self):
        tracker = CoherenceTracker()
        tracker.on_write(0, 0x100)
        assert tracker.on_read(1, 0x100) == tracker.share_cost
        assert tracker.owner_of(0x100) is None

    def test_own_line_reads_free(self):
        tracker = CoherenceTracker()
        tracker.on_write(0, 0x100)
        assert tracker.on_read(0, 0x100) == 0


class TestStoreBuffer:
    def test_forwarding(self):
        buf = StoreBuffer(mode=BufferMode.WEAK)
        buf.push(0x100, 1)
        buf.push(0x100, 2)
        assert buf.forward(0x100) == 2
        assert buf.forward(0x200) is None

    def test_same_location_drains_in_order(self):
        memory = Memory()
        rng = Random(0)
        buf = StoreBuffer(mode=BufferMode.WEAK)
        buf.push(0x100, 1)
        buf.push(0x100, 2)
        buf.drain_one(memory, rng)
        assert memory.load_word(0x100) == 1
        buf.drain_one(memory, rng)
        assert memory.load_word(0x100) == 2

    def test_weak_mode_can_reorder_across_locations(self):
        reordered = False
        for seed in range(32):
            memory = Memory()
            buf = StoreBuffer(mode=BufferMode.WEAK)
            buf.push(0x100, 1)
            buf.push(0x200, 1)
            buf.drain_one(memory, Random(seed))
            if memory.load_word(0x200) == 1 and \
                    memory.load_word(0x100) == 0:
                reordered = True
                break
        assert reordered

    def test_tso_mode_is_fifo(self):
        for seed in range(16):
            memory = Memory()
            buf = StoreBuffer(mode=BufferMode.TSO)
            buf.push(0x100, 1)
            buf.push(0x200, 1)
            buf.drain_one(memory, Random(seed))
            assert memory.load_word(0x100) == 1
            assert memory.load_word(0x200) == 0

    def test_barrier_blocks_younger_stores(self):
        for seed in range(16):
            memory = Memory()
            buf = StoreBuffer(mode=BufferMode.WEAK)
            buf.push(0x100, 1)
            buf.barrier()
            buf.push(0x200, 1)
            buf.drain_one(memory, Random(seed))
            assert memory.load_word(0x100) == 1
            assert memory.load_word(0x200) == 0

    def test_drain_all(self):
        memory = Memory()
        buf = StoreBuffer(mode=BufferMode.WEAK)
        buf.push(0x100, 1)
        buf.barrier()
        buf.push(0x200, 2)
        assert buf.drain_all(memory) == 2
        assert memory.load_word(0x200) == 2
        assert buf.pending() == 0


class TestCore:
    def test_alu_and_branches(self):
        core, _ = run_single("""
            mov x0, #0
            mov x1, #10
        loop:
            add x0, x0, x1
            sub x1, x1, #1
            cbnz x1, loop
            hlt
        """)
        assert core.get("x0") == 55

    def test_xzr_semantics(self):
        core, _ = run_single("""
            mov x0, #5
            add x1, x0, xzr
            mov xzr, #7
            add x2, xzr, xzr
            hlt
        """)
        assert core.get("x1") == 5
        assert core.get("x2") == 0
        assert core.get("xzr") == 0

    def test_cset_and_csel(self):
        eq = cond_index("eq")
        ne = cond_index("ne")
        core, _ = run_single(f"""
            mov x0, #3
            cmp x0, #3
            cset x1, #{eq}
            mov x2, #10
            mov x3, #20
            csel x4, x2, x3, #{ne}
            hlt
        """)
        assert core.get("x1") == 1
        assert core.get("x4") == 20  # ne is false

    def test_call_and_return(self):
        core, _ = run_single("""
            mov x0, #4
            bl double
            hlt
        double:
            add x0, x0, x0
            ret
        """)
        assert core.get("x0") == 8

    def test_ldxr_stxr_success(self):
        core, machine = run_single("""
            mov x1, #4096
            mov x2, #9
        retry:
            ldxr x0, [x1]
            add x0, x0, x2
            stxr x3, x0, [x1]
            cbnz x3, retry
            hlt
        """)
        assert machine.memory.load_word(4096) == 9
        assert core.get("x3") == 0

    def test_exclusive_reservation_cleared_by_foreign_store(self):
        """The monitor is global: a committed store to the reserved
        address — e.g. another core's buffer drain landing between
        LDXR and STXR — invalidates the reservation (fuzzer-found:
        the old core-local monitor let STXR succeed across it,
        an atomicity violation the Arm model forbids)."""
        from repro.machine.memory import Memory
        mem = Memory()
        mem.register_exclusive(0, 4096)
        mem.store_word(4096, 7)
        assert mem.take_exclusive(0, 4096) is False
        # Stores elsewhere leave the reservation intact, and taking
        # it consumes it.
        mem.register_exclusive(0, 4096)
        mem.store_word(8192, 7)
        assert mem.take_exclusive(0, 4096) is True
        assert mem.take_exclusive(0, 4096) is False

    def test_stxr_without_monitor_fails(self):
        core, _ = run_single("""
            mov x1, #4096
            mov x0, #5
            stxr x3, x0, [x1]
            hlt
        """)
        assert core.get("x3") == 1

    def test_casal(self):
        core, machine = run_single("""
            mov x1, #4096
            mov x0, #0
            mov x2, #7
            casal x0, x2, [x1]
            mov x4, #7
            mov x5, #9
            casal x4, x5, [x1]
            hlt
        """)
        assert machine.memory.load_word(4096) == 9
        assert core.get("x0") == 0  # old value on success
        assert core.get("x4") == 7

    def test_cas_failure_leaves_memory(self):
        core, machine = run_single("""
            mov x1, #4096
            mov x0, #3
            mov x2, #7
            casal x0, x2, [x1]
            hlt
        """)
        assert machine.memory.load_word(4096) == 0
        assert core.get("x0") == 0  # loaded the actual value

    def test_ldaddal(self):
        core, machine = run_single("""
            mov x1, #4096
            mov x0, #5
            ldaddal x0, x2, [x1]
            ldaddal x0, x3, [x1]
            hlt
        """)
        assert machine.memory.load_word(4096) == 10
        assert core.get("x2") == 0 and core.get("x3") == 5

    def test_fence_cycles_tracked(self):
        costs = CostModel()
        core, _ = run_single("dmbff\n dmbld\n dmbst\n hlt", costs=costs)
        assert core.fence_cycles == \
            costs.dmb_ff + costs.dmb_ld + costs.dmb_st

    def test_fp_ops(self):
        import struct

        def bits(x):
            return struct.unpack("<Q", struct.pack("<d", x))[0]

        core, _ = run_single(f"""
            mov x0, #{bits(2.0)}
            mov x1, #{bits(8.0)}
            fadd x2, x0, x1
            fmul x3, x0, x1
            fdiv x4, x1, x0
            fsqrt x5, x1
            hlt
        """)

        def as_double(v):
            return struct.unpack("<d", struct.pack("<Q", v))[0]

        assert as_double(core.get("x2")) == 10.0
        assert as_double(core.get("x3")) == 16.0
        assert as_double(core.get("x4")) == 4.0
        assert as_double(core.get("x5")) == pytest.approx(2.828, 0.01)

    def test_traps_intercept_pc(self):
        machine = Machine(n_cores=1, track_coherence=False)
        asm = assemble("""
            mov x0, #5
            bl 0x9000
            hlt
        """, base=0x10000)
        machine.memory.add_image(asm.base, asm.code)
        core = machine.core(0)

        def native(c):
            c.set("x0", c.get("x0") * 100)
            c.pc = c.get("x30")

        core.traps[0x9000] = native
        core.start(asm.base)
        machine.run()
        assert core.get("x0") == 500

    def test_svc_dispatch(self):
        machine = Machine(n_cores=1, track_coherence=False)
        asm = assemble("mov x0, #3\n svc #7\n hlt", base=0x10000)
        machine.memory.add_image(asm.base, asm.code)
        seen = []
        core = machine.core(0)
        core.svc_handler = lambda c, imm: seen.append(
            (imm, c.get("x0")))
        core.start(asm.base)
        machine.run()
        assert seen == [(7, 3)]

    def test_svc_without_handler_faults(self):
        with pytest.raises(MachineError):
            run_single("svc #1\n hlt")

    def test_unknown_insn_faults(self):
        machine = Machine(n_cores=1, track_coherence=False)
        core = machine.core(0)
        from repro.isa.common import Insn
        with pytest.raises(MachineError):
            core.execute(Insn("hvc"))


class TestMachineScheduling:
    def test_parallel_elapsed_is_max(self):
        machine = Machine(n_cores=2, track_coherence=False, jitter=0)
        short = assemble("mov x0, #1\n hlt", base=0x10000)
        long = assemble(
            "mov x0, #0\n mov x1, #100\nl:\n add x0, x0, #1\n"
            " cmp x0, x1\n b.ne l\n hlt", base=0x20000)
        machine.memory.add_image(short.base, short.code)
        machine.memory.add_image(long.base, long.code)
        machine.core(0).start(short.base)
        machine.core(1).start(long.base)
        machine.run()
        assert machine.elapsed_cycles() == max(
            machine.core(0).cycles, machine.core(1).cycles)
        assert machine.total_cycles() == \
            machine.core(0).cycles + machine.core(1).cycles

    def test_runaway_guarded(self):
        machine = Machine(n_cores=1, track_coherence=False)
        asm = assemble("spin:\n b spin", base=0x10000)
        machine.memory.add_image(asm.base, asm.code)
        machine.core(0).start(asm.base)
        with pytest.raises(MachineError):
            machine.run(max_steps=500)

    def test_deterministic_for_seed(self):
        def one(seed):
            machine = Machine(n_cores=2, seed=seed,
                              track_coherence=False)
            a = assemble(
                "mov x1, #4096\n mov x0, #1\n str x0, [x1]\n hlt",
                base=0x10000)
            b = assemble(
                "mov x1, #4096\n ldr x2, [x1]\n hlt", base=0x20000)
            machine.memory.add_image(a.base, a.code)
            machine.memory.add_image(b.base, b.code)
            machine.core(0).start(a.base)
            machine.core(1).start(b.base)
            machine.run()
            return (machine.core(1).get("x2"),
                    machine.elapsed_cycles())

        assert one(7) == one(7)

    def test_buffers_drained_at_quiesce(self):
        machine = Machine(n_cores=1, buffer_mode=BufferMode.WEAK,
                          track_coherence=False)
        asm = assemble(
            "mov x1, #4096\n mov x0, #9\n str x0, [x1]\n hlt",
            base=0x10000)
        machine.memory.add_image(asm.base, asm.code)
        machine.core(0).start(asm.base)
        machine.run()
        assert machine.memory.load_word(4096) == 9
