"""Differential testing: the DBT against the x86 reference interpreter.

For any guest program, translating to Arm and running on the simulated
host must produce exactly the final registers, flags and memory that
the reference x86 interpreter produces — under every variant.  This is
the end-to-end semantic-preservation property of the whole pipeline
(decode → IR → optimize → Arm codegen → execution).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbt import DBTEngine, VARIANTS, guest_reg
from repro.dbt.runtime import STACK_BASE, STACK_SIZE, guest_flag
from repro.isa.x86 import CpuState, X86Interpreter, assemble
from repro.isa.x86.insns import GPR

SCRATCH = 0x9000
CODE_BASE = 0x400000
#: The stack pointer the DBT gives the main guest thread.
DBT_RSP = STACK_BASE + STACK_SIZE - 0x100 - 8


class RefMemory:
    def __init__(self, code, base):
        self.words = {}
        self.code = code
        self.base = base

    def load_word(self, addr):
        return self.words.get(addr, 0)

    def store_word(self, addr, value):
        self.words[addr] = value & ((1 << 64) - 1)

    def read_bytes(self, addr, count):
        off = addr - self.base
        return self.code[off:off + count]


def reference_run(assembly):
    memory = RefMemory(assembly.code, assembly.base)
    state = CpuState()
    state.rip = assembly.base
    state.regs["rsp"] = DBT_RSP
    X86Interpreter(memory).run(state)
    return state, memory


def dbt_run(assembly, variant):
    engine = DBTEngine(VARIANTS[variant], n_cores=1)
    engine.load_image(assembly.base, assembly.code)
    result = engine.run(assembly.base)
    core = engine.machine.core(0)
    return core, engine.machine.memory, result


def check_equivalence(source, variants=("qemu", "risotto"),
                      compare_flags=True):
    assembly = assemble(source + "\n hlt", base=CODE_BASE)
    ref_state, ref_memory = reference_run(assembly)
    for variant in variants:
        core, memory, _ = dbt_run(assembly, variant)
        for reg in GPR:
            assert guest_reg(core, reg) == ref_state.regs[reg], \
                f"{variant}: {reg}"
        if compare_flags:
            for flag in ("zf", "sf", "cf", "of"):
                assert bool(guest_flag(core, flag)) == \
                    ref_state.flags[flag], f"{variant}: {flag}"
        for addr, value in ref_memory.words.items():
            assert memory.load_word(addr) == value, \
                f"{variant}: [{addr:#x}]"


class TestHandWritten:
    def test_arithmetic(self):
        check_equivalence("""
            mov rax, 1000
            mov rbx, 37
            sub rax, rbx
            imul rax, 3
            shl rax, 2
            xor rax, 0xFF
        """)

    def test_memory_and_addressing(self):
        check_equivalence(f"""
            mov rbx, {SCRATCH}
            mov rcx, 5
            mov rax, 77
            mov [rbx + rcx*8 + 16], rax
            mov rdx, [rbx + 56]
            add rdx, [rbx + 56]
            mov [rbx], rdx
        """)

    def test_loop_with_flags(self):
        check_equivalence("""
            mov rax, 0
            mov rcx, 37
        again:
            add rax, rcx
            dec rcx
            jne again
        """)

    def test_signed_unsigned_branches(self):
        check_equivalence("""
            mov rax, -3
            cmp rax, 5
            jl somewhere
            mov rbx, 111
            jmp out
        somewhere:
            mov rbx, 222
            cmp rax, 5
            ja above
            mov rdx, 1
            jmp out
        above:
            mov rdx, 2
        out:
        """)

    def test_call_ret_stack(self):
        check_equivalence("""
            mov rdi, 6
            call fact
            jmp done
        fact:
            mov rax, 1
        floop:
            imul rax, rdi
            dec rdi
            jne floop
            ret
        done:
        """)

    def test_push_pop(self):
        check_equivalence("""
            mov rax, 11
            push rax
            mov rax, 22
            push rax
            pop rbx
            pop rcx
        """)

    def test_atomics(self):
        check_equivalence(f"""
            mov rbx, {SCRATCH}
            mov rax, 0
            mov rcx, 7
            lock cmpxchg [rbx], rcx
            mov rdx, 5
            lock xadd [rbx], rdx
            mov rsi, 100
            xchg [rbx], rsi
        """)

    def test_fp_helpers_match_reference(self):
        import struct

        def bits(x):
            return struct.unpack("<Q", struct.pack("<d", x))[0]

        check_equivalence(f"""
            mov rax, {bits(1.5)}
            mov rbx, {bits(2.5)}
            fadd rax, rbx
            fmul rax, rbx
            fsqrt rcx, rbx
            mov rdx, {bits(3.0)}
            fdiv rax, rdx
        """)

    def test_mfence_is_transparent_single_threaded(self):
        check_equivalence(f"""
            mov rbx, {SCRATCH}
            mov rax, 1
            mov [rbx], rax
            mfence
            mov rcx, [rbx]
        """)

    def test_div(self):
        check_equivalence("""
            mov rax, 12345
            mov rcx, 97
            div rcx
        """)

    def test_movzx_neg_not(self):
        check_equivalence("""
            mov rax, -1
            movzx rbx, rax
            neg rax
            not rbx
        """)


_OPS = ("add", "sub", "and", "or", "xor", "imul")
_REGS = ("rax", "rbx", "rcx", "rdx", "rsi", "r8", "r9", "r10")


def _random_program(seed: int) -> str:
    rng = random.Random(seed)
    lines = [f"    mov rdi, {SCRATCH}"]
    for reg in _REGS:
        lines.append(f"    mov {reg}, {rng.randint(-2**31, 2**31)}")
    for _ in range(rng.randint(5, 25)):
        choice = rng.random()
        dst = rng.choice(_REGS)
        if choice < 0.45:
            op = rng.choice(_OPS)
            src = rng.choice(_REGS) if rng.random() < 0.7 \
                else rng.randint(-1000, 1000)
            lines.append(f"    {op} {dst}, {src}")
        elif choice < 0.6:
            off = rng.randrange(0, 64, 8)
            lines.append(f"    mov [rdi + {off}], {dst}")
        elif choice < 0.75:
            off = rng.randrange(0, 64, 8)
            lines.append(f"    mov {dst}, [rdi + {off}]")
        elif choice < 0.85:
            lines.append(f"    shl {dst}, {rng.randint(0, 8)}")
            lines.append(f"    shr {dst}, {rng.randint(0, 8)}")
        elif choice < 0.95:
            src = rng.choice(_REGS)
            lines.append(f"    cmp {dst}, {src}")
        else:
            lines.append("    mfence")
    return "\n".join(lines)


class TestRandomized:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_straightline_programs(self, seed):
        """Property: translated execution == reference execution."""
        check_equivalence(_random_program(seed),
                          variants=("qemu", "no-fences", "risotto"))

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_optimizer_never_changes_results(self, seed):
        """Same program with the optimizer fully disabled."""
        from repro.dbt.config import RISOTTO
        from repro.tcg.optimizer import OptimizerConfig

        source = _random_program(seed)
        assembly = assemble(source + "\n hlt", base=CODE_BASE)
        plain = RISOTTO.with_overrides(optimizer=OptimizerConfig(
            constprop=False, memopt=False, fence_merge=False,
            deadcode=False))

        raw_engine = DBTEngine(plain, n_cores=1)
        raw_engine.load_image(assembly.base, assembly.code)
        raw_engine.run(assembly.base)

        opt_engine = DBTEngine(RISOTTO, n_cores=1)
        opt_engine.load_image(assembly.base, assembly.code)
        opt_engine.run(assembly.base)

        for reg in GPR:
            assert guest_reg(raw_engine.machine.core(0), reg) == \
                guest_reg(opt_engine.machine.core(0), reg), reg
