"""Tests for the persistent translation cache.

The contract under test: a cache hit must be indistinguishable from a
fresh translation (bit-identical RunResult), invalidation must be
keyed on content (guest bytes, config, code/schema revision), and a
damaged disk entry degrades to a translate-and-rewrite, never an
error.
"""

import dataclasses

import pytest

from repro.api import deterministic_row, kernel_grid, run_kernel, \
    run_parallel
from repro.dbt import xlat_cache
from repro.dbt.config import QEMU, RISOTTO, TCG_VER
from repro.dbt.xlat_cache import (
    XlatCache,
    block_key,
    config_fingerprint,
)
from repro.tcg.backend_arm import CompiledBlock, HelperRequest
from repro.tcg.optimizer import OptStats
from repro.workloads.kernels import KernelSpec

TINY = KernelSpec("tiny", loads=2, stores=1, alu=2, fp=1,
                  iterations=40, threads=2, working_set=64)


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    """An isolated enabled cache rooted in the test's tmp dir."""
    monkeypatch.setenv("REPRO_XLAT_CACHE", str(tmp_path / "xlat"))
    monkeypatch.delenv("REPRO_XLAT_CACHE_BUDGET", raising=False)
    monkeypatch.delenv("REPRO_XLAT_CACHE_MEM", raising=False)
    xlat_cache.reset_stats()
    yield tmp_path / "xlat"
    xlat_cache.reset_memory()


def _entry() -> tuple[CompiledBlock, OptStats]:
    compiled = CompiledBlock(
        guest_pc=0x400000,
        asm="block_400000:\n    dmbld\n    ret\n",
        helper_requests=[HelperRequest(
            trap_label="__helper_write_int_1", helper="write_int",
            arg_regs=("x13",), ret_reg=None)],
        guest_insns=3,
        op_count=7,
        fence_origins=["RMOV->ld;Frm"],
    )
    return compiled, OptStats(folded=2, dead_removed=1)


class TestKeying:
    def test_key_covers_guest_bytes(self):
        fp = config_fingerprint(RISOTTO)
        same = block_key(fp, 0x400000, b"\x90" * 64)
        assert same == block_key(fp, 0x400000, b"\x90" * 64)
        assert same != block_key(fp, 0x400000, b"\x90" * 63 + b"\x91")
        assert same != block_key(fp, 0x400008, b"\x90" * 64)

    def test_config_drift_invalidates(self):
        # Different fence/CAS policies translate differently.
        fps = {config_fingerprint(c) for c in (QEMU, TCG_VER, RISOTTO)}
        assert len(fps) == 3

    def test_name_and_linker_do_not_invalidate(self):
        # Neither changes a single translated block, so identically
        # configured variants share entries.
        twin = RISOTTO.with_overrides(name="other",
                                      use_host_linker=False)
        assert config_fingerprint(twin) == config_fingerprint(RISOTTO)

    def test_schema_drift_invalidates(self, monkeypatch):
        before = config_fingerprint(RISOTTO)
        monkeypatch.setattr(xlat_cache, "SCHEMA", "repro-xlat/999")
        assert config_fingerprint(RISOTTO) != before


class TestDiskLayer:
    def test_round_trip(self, tmp_path):
        cache = XlatCache(tmp_path)
        compiled, opt = _entry()
        cache.put("ab" * 32, compiled, opt)
        cache.clear_memory()  # force the disk path
        hit = cache.get("ab" * 32)
        assert hit is not None and hit.source == "disk"
        assert hit.compiled == compiled
        assert hit.opt_stats == opt

    def test_entries_are_sharded_by_prefix(self, tmp_path):
        cache = XlatCache(tmp_path)
        compiled, opt = _entry()
        cache.put("ab" * 32, compiled, opt)
        cache.put("cd" * 32, compiled, opt)
        assert (tmp_path / "ab" / ("ab" * 32 + ".json")).is_file()
        assert (tmp_path / "cd" / ("cd" * 32 + ".json")).is_file()

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = XlatCache(tmp_path)
        compiled, opt = _entry()
        cache.put("ab" * 32, compiled, opt)
        path = tmp_path / "ab" / ("ab" * 32 + ".json")
        path.write_text("{ not json")
        cache.clear_memory()
        before = xlat_cache.cache_stats().corrupt_entries
        assert cache.get("ab" * 32) is None
        assert xlat_cache.cache_stats().corrupt_entries == before + 1
        # The following store rewrites the damaged entry in place.
        cache.put("ab" * 32, compiled, opt)
        cache.clear_memory()
        assert cache.get("ab" * 32) is not None

    def test_stale_schema_entry_reads_as_miss(self, tmp_path,
                                              monkeypatch):
        cache = XlatCache(tmp_path)
        compiled, opt = _entry()
        cache.put("ab" * 32, compiled, opt)
        cache.clear_memory()
        monkeypatch.setattr(xlat_cache, "SCHEMA", "repro-xlat/999")
        assert cache.get("ab" * 32) is None

    def test_clear_disk_removes_entries_and_tmp_files(self, tmp_path):
        cache = XlatCache(tmp_path)
        compiled, opt = _entry()
        cache.put("ab" * 32, compiled, opt)
        (tmp_path / "ab" / "orphan.tmp").write_text("x")
        assert cache.clear_disk() == 2
        assert cache.disk_usage() == (0, 0)


class TestEviction:
    def test_disk_budget_is_enforced(self, tmp_path):
        compiled, opt = _entry()
        entry_size = len(
            xlat_cache._entry_to_json(compiled, opt).encode())
        cache = XlatCache(tmp_path, max_disk_bytes=entry_size * 3)
        keys = [f"{i:02x}" * 32 for i in range(8)]
        for key in keys:
            cache.put(key, compiled, opt)
        count, total = cache.disk_usage()
        assert total <= entry_size * 3
        assert count == 3

    def test_just_written_entry_survives_tiny_budget(self, tmp_path):
        compiled, opt = _entry()
        cache = XlatCache(tmp_path, max_disk_bytes=1)
        cache.put("ab" * 32, compiled, opt)
        cache.clear_memory()
        assert cache.get("ab" * 32) is not None

    def test_memory_lru_is_bounded(self, tmp_path):
        compiled, opt = _entry()
        cache = XlatCache(tmp_path, max_mem_entries=2)
        keys = [f"{i:02x}" * 32 for i in range(4)]
        for key in keys:
            cache.put(key, compiled, opt)
        assert len(cache._mem) == 2
        # Oldest keys fell out of memory but still hit on disk.
        hit = cache.get(keys[0])
        assert hit is not None and hit.source == "disk"


class TestEngineIntegration:
    def _run(self, variant="risotto"):
        return run_kernel(TINY, variant=variant)

    def test_warm_run_is_bit_identical(self, cache_env):
        cold = self._run()
        assert cold.result.stats.xlat_misses > 0
        assert cold.result.stats.xlat_hits == 0
        xlat_cache.reset_memory()  # prove the *disk* layer alone
        warm = self._run()
        assert warm.result.stats.xlat_misses == 0
        assert warm.result.stats.xlat_hits == \
            cold.result.stats.xlat_misses
        assert warm.result.stats.xlat_disk_hits == \
            warm.result.stats.xlat_hits
        assert warm.checksum == cold.checksum
        assert warm.result.elapsed_cycles == cold.result.elapsed_cycles
        assert warm.result.total_cycles == cold.result.total_cycles
        assert warm.result.fence_cycles == cold.result.fence_cycles
        assert warm.result.opt_stats == cold.result.opt_stats
        assert warm.result.fence_cycles_by_origin == \
            cold.result.fence_cycles_by_origin
        assert warm.result.block_profile == cold.result.block_profile

    def test_variants_do_not_share_entries(self, cache_env):
        qemu = self._run("qemu")
        risotto = self._run("risotto")
        # Different fence policies translate differently — the second
        # variant must not have been served the first one's blocks.
        assert risotto.result.stats.xlat_hits == 0
        assert qemu.result.stats.xlat_hits == 0

    def test_disabled_cache_still_counts_misses(self, monkeypatch):
        monkeypatch.setenv("REPRO_XLAT_CACHE", "off")
        assert xlat_cache.get_cache() is None
        outcome = self._run()
        assert outcome.result.stats.xlat_misses == \
            outcome.result.stats.blocks_translated
        assert outcome.result.stats.xlat_hits == 0

    def test_guest_byte_drift_invalidates(self, cache_env):
        cold = self._run()
        xlat_cache.reset_memory()
        # A different kernel emits different guest code at the same
        # addresses: nothing from the first run may be served.
        other = dataclasses.replace(TINY, name="other", alu=5)
        fresh = run_kernel(other, variant="risotto")
        assert fresh.result.stats.xlat_hits == 0
        assert fresh.checksum != cold.checksum or \
            fresh.result.elapsed_cycles != cold.result.elapsed_cycles


class TestCrossWorkerSharing:
    def test_pool_workers_share_the_disk_cache(self, cache_env):
        grid = kernel_grid((TINY,), ("qemu", "risotto"))
        cold = run_parallel(grid, workers=2)
        assert sum(r.xlat_misses for r in cold) > 0
        xlat_cache.reset_memory()
        warm = run_parallel(grid, workers=2)
        assert sum(r.xlat_misses for r in warm) == 0
        assert sum(r.xlat_hits for r in warm) == \
            sum(r.xlat_misses for r in cold)
        for left, right in zip(cold, warm):
            assert deterministic_row(left) == deterministic_row(right)
