"""x86 frontend tests: fence policies, CAS policies, block shapes."""

import pytest

from repro.isa.x86.assembler import assemble
from repro.machine.memory import Memory
from repro.tcg.frontend_x86 import (
    CasPolicy,
    FencePolicy,
    FrontendConfig,
    X86Frontend,
)
from repro.tcg.ir import MO_ALL, MO_LD_LD, MO_LD_ST, MO_ST_ST


def translate(source, policy=FencePolicy.RISOTTO,
              cas=CasPolicy.NATIVE, limit=64):
    assembly = assemble(source, base=0x1000)
    memory = Memory()
    memory.add_image(assembly.base, assembly.code)
    frontend = X86Frontend(FrontendConfig(
        fence_policy=policy, cas_policy=cas, block_insn_limit=limit))
    return frontend.translate_block(memory, 0x1000)


def ops_named(block, name):
    return [op for op in block.ops if op.name == name]


def fence_masks(block):
    return [op.args[0].value for op in ops_named(block, "mb")]


class TestFencePolicies:
    SOURCE = "mov rax, [rbx]\n mov [rbx + 8], rax\n hlt"

    def test_risotto_trailing_frm_leading_fww(self):
        block = translate(self.SOURCE, FencePolicy.RISOTTO)
        masks = fence_masks(block)
        assert masks == [MO_LD_LD | MO_LD_ST, MO_ST_ST]
        # Frm comes after the ld, Fww before the st.
        names = [op.name for op in block.ops
                 if op.name in ("ld", "st", "mb")]
        assert names == ["ld", "mb", "mb", "st"]

    def test_qemu_leading_frr_fmw(self):
        block = translate(self.SOURCE, FencePolicy.QEMU)
        masks = fence_masks(block)
        assert masks == [MO_LD_LD, MO_LD_ST | MO_ST_ST]
        names = [op.name for op in block.ops
                 if op.name in ("ld", "st", "mb")]
        assert names == ["mb", "ld", "mb", "st"]

    def test_nofences_emits_nothing(self):
        block = translate(self.SOURCE, FencePolicy.NOFENCES)
        assert fence_masks(block) == []

    def test_mfence_full_barrier(self):
        block = translate("mfence\n hlt", FencePolicy.RISOTTO)
        assert fence_masks(block) == [MO_ALL]

    def test_mfence_dropped_by_nofences(self):
        block = translate("mfence\n hlt", FencePolicy.NOFENCES)
        assert fence_masks(block) == []


class TestCasPolicies:
    SOURCE = "lock cmpxchg [rbx], rcx\n hlt"

    def test_native_cas_op(self):
        block = translate(self.SOURCE, cas=CasPolicy.NATIVE)
        assert len(ops_named(block, "cas")) == 1
        assert not any(op.name == "call" and op.args[0] ==
                       "helper_cmpxchg" for op in block.ops)

    def test_helper_cas_call(self):
        block = translate(self.SOURCE, cas=CasPolicy.HELPER)
        assert not ops_named(block, "cas")
        calls = [op for op in block.ops if op.name == "call"
                 and op.args[0] == "helper_cmpxchg"]
        assert len(calls) == 1

    def test_xadd_policies(self):
        source = "lock xadd [rbx], rcx\n hlt"
        native = translate(source, cas=CasPolicy.NATIVE)
        helper = translate(source, cas=CasPolicy.HELPER)
        assert ops_named(native, "atomic_add")
        assert not ops_named(helper, "atomic_add")

    def test_xchg_policies(self):
        source = "xchg [rbx], rcx\n hlt"
        native = translate(source, cas=CasPolicy.NATIVE)
        assert ops_named(native, "atomic_xchg")

    def test_cmpxchg_sets_zf_and_rax(self):
        block = translate(self.SOURCE, cas=CasPolicy.NATIVE)
        setconds = ops_named(block, "setcond")
        assert any(op.args[0].name == "g_zf" for op in setconds)


class TestBlockStructure:
    def test_block_ends_at_branch(self):
        block = translate("mov rax, 1\n jmp 0x2000\n mov rbx, 2\n hlt")
        assert block.guest_insns == 2  # the mov after jmp is unreached

    def test_conditional_jump_two_exits(self):
        block = translate("cmp rax, 0\n je 0x2000\n hlt")
        gotos = ops_named(block, "goto_tb")
        assert len(gotos) == 2  # fallthrough + taken

    def test_block_limit_forces_goto(self):
        source = "\n".join(["mov rax, 1"] * 10) + "\n hlt"
        block = translate(source, limit=4)
        assert block.guest_insns == 4
        assert ops_named(block, "goto_tb")

    def test_ret_exits_via_computed_target(self):
        block = translate("ret")
        exits = ops_named(block, "exit_tb")
        assert len(exits) == 1

    def test_call_pushes_return_address(self):
        block = translate("call 0x2000")
        assert ops_named(block, "st")  # return address push

    def test_fp_goes_through_helpers(self):
        block = translate("fadd rax, rbx\n hlt")
        calls = [op for op in block.ops if op.name == "call"]
        assert any(c.args[0] == "helper_fadd" for c in calls)

    def test_syscall_and_halt_are_helper_calls(self):
        block = translate("syscall")
        assert any(op.name == "call" and op.args[0] == "helper_syscall"
                   for op in block.ops)
        block = translate("hlt")
        assert any(op.name == "call" and op.args[0] == "helper_halt"
                   for op in block.ops)
