"""Golden equivalence: table-derived schemes vs the hardwired policies.

The frontend used to branch on ``FencePolicy`` with hand-typed masks
and origin literals; it now emits from a derived
:class:`~repro.core.most.FenceScheme`.  ``_LegacyFrontend`` below
replicates the removed branches verbatim, and every test proves the
scheme-driven frontend is *bit-identical* to it — same op sequences,
same fence masks, same provenance strings, same compiled Arm assembly
— across the fig12 workload set and the fence-relevant instruction
surface.

A second family of tests pins provenance hygiene: every origin a
translated block carries must be a registered rule of the active
scheme (no hand-typed literal can drift from the registry again).
"""

import re

import pytest

from repro.core.most import SCHEMES, known_origins
from repro.isa.x86.assembler import assemble
from repro.machine.memory import Memory
from repro.tcg.backend_arm import ArmBackend
from repro.tcg.frontend_x86 import (
    CasPolicy,
    FencePolicy,
    FrontendConfig,
    X86Frontend,
)
from repro.tcg.ir import MO_ALL, MO_LD_LD, MO_LD_ST, MO_ST_ST, Const
from repro.workloads import ALL_SPECS, gen_x86_program

BASE = 0x1000

POLICIES = (FencePolicy.QEMU, FencePolicy.RISOTTO,
            FencePolicy.NOFENCES)

#: Fence-relevant x86 surface: plain loads/stores (direct and via
#: addressing modes), the explicit fences, stack traffic (push/pop/
#: call/ret emit through the same load/store helpers), and RMWs.
SNIPPETS = {
    "load-store": "mov rax, [rbx]\n mov [rbx + 8], rax\n hlt",
    "load-indexed": "mov rcx, [rbx + rdx*4]\n hlt",
    "store-imm": "mov [rbx], 7\n hlt",
    "fences": "mfence\n lfence\n sfence\n hlt",
    "stack": "push rax\n push rbx\n pop rcx\n pop rdx\n hlt",
    "call-ret": "call fn\n hlt\nfn:\n ret",
    "cas": "lock cmpxchg [rbx], rcx\n hlt",
    "xadd": "lock xadd [rbx], rcx\n hlt",
    "xchg": "xchg [rbx], rcx\n hlt",
    "mixed": ("mov rax, [rsi]\n add rax, 1\n mov [rdi], rax\n"
              " mfence\n mov rbx, [rsi + 8]\n hlt"),
}


class _LegacyFrontend(X86Frontend):
    """The pre-refactor emission, replicated literally for the diff."""

    _EXPLICIT = {
        "mfence": (MO_ALL, "MFENCE->Fsc"),
        "lfence": (MO_LD_LD | MO_LD_ST, "LFENCE->Frm"),
        "sfence": (MO_ST_ST, "SFENCE->Fww"),
    }

    def _emit_load(self, block, dst, addr):
        policy = self.config.fence_policy
        if policy is FencePolicy.QEMU:
            block.mb(MO_LD_LD, origin="RMOV->Frr;ld")
            block.emit("ld", dst, addr, Const(0))
        elif policy is FencePolicy.RISOTTO:
            block.emit("ld", dst, addr, Const(0))
            block.mb(MO_LD_LD | MO_LD_ST, origin="RMOV->ld;Frm")
        else:
            block.emit("ld", dst, addr, Const(0))

    def _emit_store(self, block, src, addr):
        policy = self.config.fence_policy
        if policy is FencePolicy.QEMU:
            block.mb(MO_LD_ST | MO_ST_ST, origin="WMOV->Fmw;st")
        elif policy is FencePolicy.RISOTTO:
            block.mb(MO_ST_ST, origin="WMOV->Fww;st")
        block.emit("st", src, addr, Const(0))

    def _emit_scheme_fence(self, block, slot):
        # Only the explicit x86 fences reach this hook: the load and
        # store paths are fully overridden above.
        assert slot in self._EXPLICIT, slot
        if self.config.fence_policy is not FencePolicy.NOFENCES:
            mask, origin = self._EXPLICIT[slot]
            block.mb(mask, origin=origin)


def _translate(frontend_cls, source, policy, pc=BASE):
    assembly = assemble(source, base=BASE)
    memory = Memory()
    memory.add_image(assembly.base, assembly.code)
    frontend = frontend_cls(FrontendConfig(
        fence_policy=policy, cas_policy=CasPolicy.NATIVE))
    return frontend.translate_block(memory, pc)


def _block_facts(block):
    """Everything observable about a block, origins included (the Op
    dataclass excludes ``origin`` from equality, so spell it out)."""
    return [(op.name, op.args, op.origin) for op in block.ops]


def _normalize_asm(asm):
    """Helper trap labels embed ``id(op)`` (a per-object address), the
    one legitimately run-dependent token in the text."""
    return re.sub(r"(__helper_[A-Za-z0-9_]*_)\d+", r"\1N", asm)


def _assert_blocks_identical(source, policy, pc=BASE):
    derived = _translate(X86Frontend, source, policy, pc)
    legacy = _translate(_LegacyFrontend, source, policy, pc)
    assert _block_facts(derived) == _block_facts(legacy)
    compiled_new = ArmBackend().compile_block(derived)
    compiled_old = ArmBackend().compile_block(legacy)
    assert _normalize_asm(compiled_new.asm) == \
        _normalize_asm(compiled_old.asm)
    assert compiled_new.fence_origins == compiled_old.fence_origins


class TestSnippetGoldenEquivalence:
    @pytest.mark.parametrize("policy", POLICIES,
                             ids=lambda p: p.value)
    @pytest.mark.parametrize("snippet", sorted(SNIPPETS))
    def test_bit_identical(self, snippet, policy):
        _assert_blocks_identical(SNIPPETS[snippet], policy)


class TestFig12GoldenEquivalence:
    @pytest.mark.parametrize("policy", POLICIES,
                             ids=lambda p: p.value)
    @pytest.mark.parametrize("spec", ALL_SPECS,
                             ids=lambda s: s.name)
    def test_every_labelled_block(self, spec, policy):
        """Translate the block at every label of the kernel program
        (main, worker, loop heads) under both frontends."""
        source = gen_x86_program(spec)
        assembly = assemble(source, base=BASE)
        for label, pc in sorted(assembly.labels.items()):
            _assert_blocks_identical(source, policy, pc=pc)


class TestOriginRegistry:
    """Satellite 1: emitted provenance is always a registered rule."""

    @pytest.mark.parametrize("policy", POLICIES,
                             ids=lambda p: p.value)
    @pytest.mark.parametrize("snippet", sorted(SNIPPETS))
    def test_snippet_origins_are_registered(self, snippet, policy):
        registered = known_origins()
        block = _translate(X86Frontend, SNIPPETS[snippet], policy)
        for op in block.ops:
            if op.origin is not None:
                assert op.origin in registered, op.origin

    def test_scheme_origins_come_from_the_scheme(self):
        """The block's origins are exactly what the active scheme's
        rules can produce — for every registered scheme, not just the
        legacy three."""
        source = SNIPPETS["mixed"]
        for scheme in SCHEMES.values():
            assembly = assemble(source, base=BASE)
            memory = Memory()
            memory.add_image(assembly.base, assembly.code)
            frontend = X86Frontend(FrontendConfig(
                cas_policy=CasPolicy.NATIVE, scheme=scheme))
            block = frontend.translate_block(memory, BASE)
            emitted = {op.origin for op in block.ops
                       if op.origin is not None}
            assert emitted <= scheme.origins(), scheme.name

    def test_explicit_scheme_wins_over_policy(self):
        """A config carrying both resolves to the explicit scheme."""
        config = FrontendConfig(fence_policy=FencePolicy.QEMU,
                                scheme=SCHEMES["risotto"])
        assert config.scheme is SCHEMES["risotto"]

    def test_policy_resolves_to_derived_equivalent(self):
        for policy in POLICIES:
            config = FrontendConfig(fence_policy=policy)
            assert config.scheme is SCHEMES[
                {"qemu": "qemu", "risotto": "risotto",
                 "no-fences": "no-fences"}[policy.value]]
