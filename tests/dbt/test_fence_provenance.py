"""Fence provenance: every executed DMB's cycles are attributed to
the mapping rule (or optimizer transform) that emitted the fence, all
the way from the x86 frontend through the Arm backend to the machine's
cycle accounting."""

import pytest

from repro.machine.cpu import UNTAGGED_ORIGIN
from repro.tcg.ir import MO_LD_LD, MO_ST_ST, Const, Op, TCGBlock
from repro.tcg.optimizer import OptimizerConfig, optimize
from repro.workloads import SPEC_BY_NAME, run_kernel

SPEC = SPEC_BY_NAME["histogram"]


@pytest.fixture(scope="module")
def qemu_result():
    return run_kernel(SPEC, "qemu", seed=7).result


@pytest.fixture(scope="module")
def risotto_result():
    return run_kernel(SPEC, "risotto", seed=7).result


class TestEndToEnd:
    def test_origins_partition_fence_cycles(self, qemu_result,
                                            risotto_result):
        """Figure 12's by-origin footer must reconcile exactly."""
        for result in (qemu_result, risotto_result):
            by_origin = result.fence_cycles_by_origin
            assert by_origin, "fence-heavy kernel must attribute fences"
            assert sum(by_origin.values()) == result.fence_cycles

    def test_qemu_origins_are_figure2_rules(self, qemu_result):
        origins = set(qemu_result.fence_cycles_by_origin)
        assert "RMOV->Frr;ld" in origins
        assert "WMOV->Fmw;st" in origins
        assert UNTAGGED_ORIGIN not in origins

    def test_risotto_origins_are_figure7_rules(self, risotto_result):
        origins = set(risotto_result.fence_cycles_by_origin)
        assert "RMOV->ld;Frm" in origins
        assert "WMOV->Fww;st" in origins
        assert UNTAGGED_ORIGIN not in origins

    def test_variants_never_share_mapping_origins(self, qemu_result,
                                                  risotto_result):
        shared = set(qemu_result.fence_cycles_by_origin) & \
            set(risotto_result.fence_cycles_by_origin)
        # fence_merge may fire for both; the mapping rules must not.
        assert shared <= {"fence_merge:strengthen"}

    def test_block_profile_covers_dispatches(self, qemu_result):
        profile = qemu_result.block_profile
        assert profile, "hot-block profile must be populated"
        dispatches = sum(d for d, _ in profile.values())
        assert dispatches == qemu_result.stats.block_dispatches
        # attributed cycles accumulate across cores, so the bound is
        # the machine-wide total, not the elapsed (max-core) count.
        hottest_cycles = max(c for _, c in profile.values())
        assert 0 < hottest_cycles <= qemu_result.total_cycles


class TestOptimizerPreservesOrigins:
    def _origins(self, block):
        return [op.origin for op in block.ops if op.name == "mb"]

    def test_constprop_rebuild_keeps_origin(self):
        """Regression: constprop's generic rebuild branch used to drop
        ``Op.origin``, collapsing every fence bucket to 'untagged'."""
        block = TCGBlock(guest_pc=0x1000)
        t0 = block.new_temp()
        block.movi(t0, 5)
        block.mb(MO_LD_LD, origin="RMOV->Frr;ld")
        optimize(block, OptimizerConfig(
            constprop=True, memopt=False, fence_merge=False,
            deadcode=False))
        assert self._origins(block) == ["RMOV->Frr;ld"]

    def test_fence_merge_tags_strengthened_fence(self):
        block = TCGBlock(guest_pc=0x1000)
        block.mb(MO_LD_LD, origin="RMOV->Frr;ld")
        block.mb(MO_ST_ST, origin="WMOV->Fww;st")
        stats = optimize(block, OptimizerConfig(
            constprop=False, memopt=False, fence_merge=True,
            deadcode=False))
        assert stats.fences_merged == 1
        assert self._origins(block) == ["fence_merge:strengthen"]

    def test_full_pipeline_keeps_origin(self):
        block = TCGBlock(guest_pc=0x2000)
        t0 = block.new_temp()
        block.movi(t0, 1)
        block.mb(MO_ST_ST, origin="WMOV->Fww;st")
        optimize(block, OptimizerConfig())
        assert self._origins(block) == ["WMOV->Fww;st"]

    def test_origin_is_not_part_of_op_identity(self):
        a = Op("mb", (Const(1),), origin="RMOV->Frr;ld")
        b = Op("mb", (Const(1),), origin="WMOV->Fww;st")
        assert a == b  # provenance is metadata, not semantics
