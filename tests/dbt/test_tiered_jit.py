"""Tiered JIT: superblock promotion, helper inlining, and the
profile-attribution fixes that keep tier-2 honest.

Covers the second compilation tier end to end — promotion firing at
the hotness threshold, the stitched trace executing bit-identically to
the tier-1 blocks it replaces, the RMW/FP helper-call reduction — plus
regression tests for the three hot-path bugs fixed alongside it:

* ``block_profile_snapshot`` destroying open intervals mid-run,
* ``merge_fences_pass`` counting dropped empty fences as merges
  (unit-tested in tests/tcg/test_ir_and_optimizer.py),
* ``_finish_thread`` closing the profile before the exit drain.
"""

import dataclasses

import pytest

from repro.dbt import DBTEngine, VARIANTS
from repro.dbt.config import Tier2Config, tier2_from_env
from repro.errors import MachineError, ReproError
from repro.isa.x86 import assemble
from repro.tcg.ir import Const, Op, TCGBlock, Temp
from repro.tcg.optimizer import inline_helpers_pass
from repro.tcg.superblock import stitch_trace

COUNTER = 0xA000

#: A hot single-block loop: RMW + ALU body, then report the counter.
LOOP_SOURCE = f"""
main:
    mov rcx, 200
    mov rbx, {COUNTER}
    mov rax, 1
wloop:
    lock xadd [rbx], rax
    add rax, 1
    dec rcx
    jne wloop
    mov rdi, [rbx]
    mov rax, 1
    syscall
    mov rdi, 0
    mov rax, 60
    syscall
"""


def make_engine(variant="qemu", tier2=None, n_cores=1, seed=7):
    return DBTEngine(VARIANTS[variant], n_cores=n_cores, seed=seed,
                     tier2=tier2)


def load(engine, source=LOOP_SOURCE):
    assembly = assemble(source, base=0x400000)
    engine.load_image(assembly.base, assembly.code)
    return assembly.label("main")


def run_loop(variant="qemu", tier2=None):
    engine = make_engine(variant, tier2)
    result = engine.run(load(engine))
    return result, engine


# ----------------------------------------------------------------------
# Tentpole: promotion, trace execution, helper inlining
# ----------------------------------------------------------------------
class TestTier2Promotion:
    def test_promotion_fires_at_threshold(self):
        result, _ = run_loop(tier2=Tier2Config(threshold=8))
        assert result.stats.tier2_traces >= 1
        assert result.stats.tier2_trace_blocks >= 1
        assert result.stats.tier2_trace_dispatches >= 1
        assert result.stats.tier2_cycles > 0

    def test_off_by_default(self):
        result, engine = run_loop()
        assert engine.tier2 is None
        assert result.stats.tier2_traces == 0
        assert result.stats.tier2_trace_dispatches == 0

    def test_guest_visible_results_identical(self):
        off, _ = run_loop(tier2=None)
        on, _ = run_loop(tier2=Tier2Config(threshold=8))
        assert on.output == off.output
        assert on.exit_code == off.exit_code

    def test_cycles_reduced(self):
        off, _ = run_loop(tier2=None)
        on, _ = run_loop(tier2=Tier2Config(threshold=8))
        assert on.elapsed_cycles < off.elapsed_cycles

    def test_rmw_helper_calls_drop(self):
        # qemu translates lock xadd through helper_xadd; the trace
        # inlines it to ldaddal, so the helper count collapses to the
        # cold iterations before promotion.
        off, _ = run_loop(tier2=None)
        on, _ = run_loop(tier2=Tier2Config(threshold=8))
        assert off.stats.helper_calls >= 200
        assert on.stats.helper_calls < off.stats.helper_calls // 2

    def test_helpers_inlined_counted(self):
        on, engine = run_loop(tier2=Tier2Config(threshold=8))
        assert engine.opt_stats.helpers_inlined >= 1

    def test_inlining_can_be_disabled(self):
        on, engine = run_loop(
            tier2=Tier2Config(threshold=8, inline_helpers=False))
        assert engine.opt_stats.helpers_inlined == 0
        # The self-loop seam still makes the trace worthwhile.
        assert on.stats.tier2_traces >= 1

    def test_fp_trace_bit_identical(self):
        # FP helper inlining must preserve the softfloat results
        # bit-for-bit (both sides are Python float64).
        source = """
main:
    mov rcx, 120
    mov r9, 4608308318706860032
    mov r10, 4602678819172646912
fploop:
    fadd r9, r10
    fmul r9, r10
    dec rcx
    jne fploop
    mov rdi, r9
    mov rax, 1
    syscall
    mov rdi, 0
    mov rax, 60
    syscall
"""
        def fp_run(tier2):
            engine = make_engine("qemu", tier2)
            return engine.run(load(engine, source))

        off = fp_run(None)
        on = fp_run(Tier2Config(threshold=8))
        assert on.output == off.output
        assert on.exit_code == off.exit_code
        assert on.elapsed_cycles < off.elapsed_cycles

    def test_trace_dispatch_counts_preserved(self):
        # Trace entries are still block dispatches of the head pc —
        # the profile keeps covering every dispatcher round-trip.
        on, _ = run_loop(tier2=Tier2Config(threshold=8))
        profile = on.block_profile
        assert sum(d for d, _ in profile.values()) \
            == on.stats.block_dispatches


class TestTier2EnvKnob:
    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TIER2_THRESHOLD", raising=False)
        assert tier2_from_env() is None

    @pytest.mark.parametrize("raw", ["0", "off", "none", "disabled",
                                     "", "-3"])
    def test_disabling_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TIER2_THRESHOLD", raw)
        assert tier2_from_env() is None

    def test_integer_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER2_THRESHOLD", "64")
        assert tier2_from_env() == Tier2Config(threshold=64)

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER2_THRESHOLD", "warp9")
        with pytest.raises(ReproError):
            tier2_from_env()

    def test_engine_picks_up_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER2_THRESHOLD", "16")
        engine = DBTEngine(VARIANTS["qemu"], n_cores=1)
        assert engine.tier2 == Tier2Config(threshold=16)

    def test_explicit_none_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER2_THRESHOLD", "16")
        engine = DBTEngine(VARIANTS["qemu"], n_cores=1, tier2=None)
        assert engine.tier2 is None


# ----------------------------------------------------------------------
# Superblock stitcher unit behavior
# ----------------------------------------------------------------------
def _block(pc, *ops):
    return TCGBlock(guest_pc=pc, ops=list(ops))


class TestStitcher:
    def test_fallthrough_seam_dropped(self):
        a = _block(0x1000,
                   Op("movi", (Temp("t0"), Const(1))),
                   Op("goto_tb", (Const(0x2000),)))
        b = _block(0x2000,
                   Op("movi", (Temp("t0"), Const(2))),
                   Op("exit_tb", (Const(0),)))
        stitched = stitch_trace([a, b])
        assert stitched.fallthroughs == 1
        assert stitched.internal_branches == 0
        assert stitched.side_exits == 1
        names = [op.name for op in stitched.block.ops]
        assert "goto_tb" not in names

    def test_back_edge_becomes_internal_branch(self):
        loop = _block(0x1000,
                      Op("movi", (Temp("t0"), Const(1))),
                      Op("goto_tb", (Const(0x1000),)))
        stitched = stitch_trace([loop])
        assert stitched.internal_branches == 1
        names = [op.name for op in stitched.block.ops]
        assert names[0] == "set_label"
        assert names[-1] == "br"

    def test_segment_temps_renamed_apart(self):
        a = _block(0x1000,
                   Op("movi", (Temp("t0"), Const(1))),
                   Op("goto_tb", (Const(0x2000),)))
        b = _block(0x2000,
                   Op("movi", (Temp("t0"), Const(2))),
                   Op("exit_tb", (Const(0),)))
        stitched = stitch_trace([a, b])
        temps = {arg.name for op in stitched.block.ops
                 for arg in op.args if isinstance(arg, Temp)}
        assert temps == {"s0_t0", "s1_t0"}

    def test_unrelated_goto_tb_stays_side_exit(self):
        a = _block(0x1000,
                   Op("goto_tb", (Const(0x9000),)))
        stitched = stitch_trace([a])
        assert stitched.side_exits == 1
        assert stitched.internal_branches == 0
        assert stitched.block.ops[0].name == "goto_tb"

    def test_guest_insns_summed(self):
        a = _block(0x1000, Op("goto_tb", (Const(0x2000),)))
        a.guest_insns = 3
        b = _block(0x2000, Op("exit_tb", (Const(0),)))
        b.guest_insns = 4
        assert stitch_trace([a, b]).block.guest_insns == 7


class TestInlineHelpersPass:
    def test_rmw_and_fp_helpers_rewritten(self):
        block = _block(
            0x1000,
            Op("call", ("helper_xadd", Temp("t0"), Temp("t1"),
                        Temp("t2"))),
            Op("call", ("helper_fadd", Temp("t3"), Temp("t4"),
                        Temp("t5"))),
        )
        assert inline_helpers_pass(block) == 2
        assert [op.name for op in block.ops] == ["atomic_add", "fadd"]
        assert block.ops[0].args == (Temp("t0"), Temp("t1"), Temp("t2"))

    def test_fdiv_and_fsqrt_left_alone(self):
        # Their helpers fault on /0 and negative sqrt where the native
        # ops produce inf/NaN — inlining would diverge.
        block = _block(
            0x1000,
            Op("call", ("helper_fdiv", Temp("t0"), Temp("t1"),
                        Temp("t2"))),
            Op("call", ("helper_fsqrt", Temp("t3"), Temp("t4"))),
        )
        assert inline_helpers_pass(block) == 0
        assert all(op.name == "call" for op in block.ops)


# ----------------------------------------------------------------------
# S1: non-destructive mid-run profile snapshots
# ----------------------------------------------------------------------
class TestSnapshotNonDestructive:
    def _reference_profile(self):
        result, _ = run_loop()
        return result.block_profile

    def test_midrun_snapshots_do_not_lose_cycles(self):
        reference = self._reference_profile()

        engine = make_engine()
        entry = load(engine)
        engine.runtime.start_main_thread(entry)
        # Interrupt the run mid-flight, snapshot twice back to back,
        # then let it finish: attribution must match the uninterrupted
        # reference exactly.
        with pytest.raises(MachineError):
            engine.machine.run(max_steps=300)
        first = engine.runtime.block_profile_snapshot()
        second = engine.runtime.block_profile_snapshot()
        assert first == second
        engine.machine.run()
        final = engine.runtime.block_profile_snapshot()
        assert final == reference

    def test_snapshot_totals_grow_monotonically(self):
        engine = make_engine()
        engine.runtime.start_main_thread(load(engine))
        with pytest.raises(MachineError):
            engine.machine.run(max_steps=300)
        early = engine.runtime.block_profile_snapshot()
        engine.machine.run()
        late = engine.runtime.block_profile_snapshot()
        for pc, (dispatches, cycles) in early.items():
            assert late[pc][0] >= dispatches
            assert late[pc][1] >= cycles


# ----------------------------------------------------------------------
# S3: per-pc cycle attribution is conservative
# ----------------------------------------------------------------------
class TestProfileConservation:
    def test_attributed_cycles_sum_to_core_total(self):
        # Single-threaded run on one core: every cycle the core spends
        # — dispatch entries, helpers, syscalls, the exit drain —
        # belongs to exactly one open block interval.
        engine = make_engine(n_cores=1)
        result = engine.run(load(engine))
        profile = result.block_profile
        attributed = sum(cycles for _, cycles in profile.values())
        assert attributed == engine.machine.core(0).cycles

    def test_conservation_holds_with_tier2(self):
        engine = make_engine(n_cores=1, tier2=Tier2Config(threshold=8))
        result = engine.run(load(engine))
        attributed = sum(
            cycles for _, cycles in result.block_profile.values())
        assert attributed == engine.machine.core(0).cycles
        # Trace-attributed cycles are a subset of the profile total.
        assert 0 < result.stats.tier2_cycles <= attributed


# ----------------------------------------------------------------------
# S4: fig12 differential + fuzz smoke
# ----------------------------------------------------------------------
class TestFig12Differential:
    @pytest.fixture(scope="class")
    def spec_names(self):
        from repro.workloads.suites import ALL_SPECS
        return [s.name for s in ALL_SPECS]

    def test_every_fig12_benchmark_bit_identical(self, spec_names):
        from repro.workloads.runner import run_kernel
        from repro.workloads.suites import SPEC_BY_NAME

        assert len(spec_names) == 16
        for name in spec_names:
            spec = dataclasses.replace(SPEC_BY_NAME[name],
                                       iterations=60)
            off = run_kernel(spec, "qemu", tier2_threshold=0)
            on = run_kernel(spec, "qemu", tier2_threshold=8)
            assert on.checksum == off.checksum, name
            assert on.result.output == off.result.output, name
            assert on.result.exit_code == off.result.exit_code, name


class TestFuzzSmoke:
    def test_dbt_differential_under_tier2(self, monkeypatch):
        # Force tier-2 on for every engine the oracle builds: all
        # three legs (block / kernel / mapping) must stay divergence-
        # free with traces compiled at threshold 1.
        monkeypatch.setenv("REPRO_TIER2_THRESHOLD", "1")
        from repro.fuzz.runner import FuzzConfig, run_fuzz

        report = run_fuzz(FuzzConfig(
            seed=20260807, cases=200,
            oracles=("dbt-differential",), shrink=False))
        assert report.total_cases == 200
        assert report.divergences == 0, report.findings
