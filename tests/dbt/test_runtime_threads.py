"""Runtime services: threads, syscalls, dispatch, block cache, CAS."""

import pytest

from repro.dbt import DBTEngine, VARIANTS
from repro.dbt.config import RISOTTO
from repro.errors import GuestFault
from repro.isa.x86 import assemble


def run(source, variant="risotto", n_cores=4, **kw):
    engine = DBTEngine(VARIANTS[variant], n_cores=n_cores)
    assembly = assemble(source, base=0x400000)
    engine.load_image(assembly.base, assembly.code)
    result = engine.run(assembly.label("main"), **kw)
    return result, engine


EXIT = "mov rdi, {code}\n mov rax, 60\n syscall"


class TestSyscalls:
    def test_exit_code(self):
        result, _ = run("main:\n" + EXIT.format(code=42))
        assert result.exit_code == 42

    def test_write_int(self):
        result, _ = run("""
main:
    mov rdi, 7
    mov rax, 1
    syscall
    mov rdi, 9
    mov rax, 1
    syscall
""" + EXIT.format(code=0))
        assert result.output == [7, 9]

    def test_unknown_syscall_faults(self):
        with pytest.raises(GuestFault):
            run("main:\n mov rax, 9999\n syscall\n hlt")


class TestThreads:
    COUNTER = 0xA000

    def test_spawn_join_and_shared_counter(self):
        source = f"""
main:
    mov rax, 1000
    mov rdi, adder
    mov rsi, 100
    syscall
    mov r15, rax
    mov rax, 1000
    mov rdi, adder
    mov rsi, 200
    syscall
    mov r14, rax
    mov rdi, r15
    mov rax, 1001
    syscall
    mov rdi, r14
    mov rax, 1001
    syscall
    mov rbx, {self.COUNTER}
    mov rdi, [rbx]
    mov rax, 1
    syscall
""" + EXIT.format(code=0) + """
adder:
    mov rbx, {counter}
    mov rcx, 50
aloop:
    lock xadd [rbx], rdi
    mov rdi, 1
    dec rcx
    jne aloop
    ret
""".format(counter=self.COUNTER)
        result, _ = run(source)
        # thread A: 100 + 49*1; thread B: 200 + 49*1
        assert result.output == [100 + 49 + 200 + 49]

    def test_join_unknown_tid_returns_error(self):
        source = """
main:
    mov rdi, 999
    mov rax, 1001
    syscall
    mov rdi, rax
    mov rax, 1
    syscall
""" + EXIT.format(code=0)
        result, _ = run(source)
        assert result.output == [(1 << 64) - 1]

    def test_thread_exhaustion_faults(self):
        source = """
main:
    mov rcx, 8
spawn_all:
    mov rax, 1000
    mov rdi, sleeper
    mov rsi, 0
    syscall
    dec rcx
    jne spawn_all
""" + EXIT.format(code=0) + """
sleeper:
    mov rcx, 100000
sloop:
    dec rcx
    jne sloop
    ret
"""
        with pytest.raises(GuestFault):
            run(source, n_cores=2)

    def test_worker_return_value_flows_through_exit(self):
        source = """
main:
    mov rax, 1000
    mov rdi, worker
    mov rsi, 5
    syscall
    mov rdi, rax
    mov rax, 1001
    syscall
""" + EXIT.format(code=0) + """
worker:
    mov rax, rdi
    add rax, 10
    ret
"""
        result, engine = run(source)
        finished = [t for t in engine.runtime.threads.values()
                    if t.tid == 2]
        assert finished and finished[0].exit_code == 15


class TestBlockCache:
    def test_blocks_translated_once(self):
        source = """
main:
    mov rcx, 50
loop:
    dec rcx
    jne loop
""" + EXIT.format(code=0)
        result, engine = run(source)
        # main entry + loop body + exit tail: a handful, not 50.
        assert result.stats.blocks_translated <= 5
        assert result.stats.block_dispatches > 40

    def test_chaining_reduces_dispatch_cost(self):
        source = """
main:
    mov rcx, 50
loop:
    dec rcx
    jne loop
""" + EXIT.format(code=0)
        __, engine = run(source)
        stats = engine.runtime.stats
        assert stats.chained_dispatches > 30

    def test_cross_thread_code_sharing(self):
        """Both threads run the same guest function; the block cache is
        shared so it is translated once."""
        source = """
main:
    mov rax, 1000
    mov rdi, fn
    mov rsi, 1
    syscall
    mov r15, rax
    mov rdi, 0
    call fn
    mov rdi, r15
    mov rax, 1001
    syscall
""" + EXIT.format(code=0) + """
fn:
    mov rax, 1
    ret
"""
        __, engine = run(source)
        fn_blocks = [
            pc for pc in engine.runtime.block_map
            if pc not in (0x400000,)
        ]
        translated = engine.runtime.stats.blocks_translated
        assert translated == len(engine.runtime.block_map)


class TestCasVariants:
    SOURCE = """
main:
    mov rbx, 0xA100
    mov rax, 0
    mov rcx, 7
    lock cmpxchg [rbx], rcx
""" + EXIT.format(code=0)

    @pytest.mark.parametrize("variant", list(VARIANTS))
    def test_cas_correct_under_all_variants(self, variant):
        result, engine = run(self.SOURCE, variant=variant)
        assert engine.machine.memory.load_word(0xA100) == 7

    def test_helper_variant_calls_helper(self):
        __, engine = run(self.SOURCE, variant="qemu")
        assert engine.runtime.stats.helper_calls >= 1

    def test_native_variant_avoids_rmw_helper(self):
        __, engine = run(self.SOURCE, variant="risotto")
        # only the syscall/halt helpers fire, no cmpxchg helper: count
        # helper traps registered for cmpxchg.
        cmpxchg_traps = [
            key for key in engine._helper_traps
            if key[0] == "helper_cmpxchg"
        ]
        assert not cmpxchg_traps
