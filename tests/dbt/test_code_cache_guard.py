"""Regression test: the code cache detects probe/final length drift.

``DBTEngine._install`` assembles each block twice — once at a dummy
base to size the allocation, once at the real base.  If a relocated
encoding changed length between the passes, the block would overrun
its cache slot and silently corrupt the next installed block.  The
engine must refuse to install such a block instead.
"""

import pytest

import repro.dbt.engine as engine_mod
from repro.dbt import DBTEngine
from repro.errors import TranslationError
from repro.isa.arm.assembler import assemble as real_assemble
from repro.isa.x86 import assemble as assemble_x86

CODE_BASE = 0x400000

GUEST = """
main:
  mov rdi, 0
  mov rax, 60
  syscall
"""


def _run_guest():
    assembly = assemble_x86(GUEST, base=CODE_BASE)
    engine = DBTEngine(n_cores=1)
    engine.load_image(assembly.base, assembly.code)
    return engine.run(assembly.base)


def test_drifting_assembler_is_rejected(monkeypatch):
    def drifting_assemble(asm, base=0, external_labels=None):
        result = real_assemble(asm, base=base,
                               external_labels=external_labels)
        if base != 0:
            # Pretend relocation grew the encoding past the probe.
            result.code = result.code + b"\x00\x00\x00\x00"
        return result

    monkeypatch.setattr(engine_mod, "assemble_arm", drifting_assemble)
    with pytest.raises(TranslationError, match="probe pass"):
        _run_guest()


def test_stable_assembler_still_installs():
    result = _run_guest()
    assert result.exit_code == 0
    assert result.stats.blocks_translated > 0
