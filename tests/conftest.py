"""Tier-1 suite isolation.

The persistent translation cache deliberately survives across runs, so
a warm checkout would change what the unit tests observe (e.g. which
pipeline spans fire).  The suite therefore runs with the cache off;
tests that exercise it opt in through their own tmp-dir fixtures,
which override this per-test default.
"""

import pytest


@pytest.fixture(autouse=True)
def _no_ambient_xlat_cache(monkeypatch):
    monkeypatch.setenv("REPRO_XLAT_CACHE", "off")
    # Tier-2 promotion is likewise opt-in per test: an ambient
    # REPRO_TIER2_THRESHOLD would change dispatch counters suite-wide.
    monkeypatch.delenv("REPRO_TIER2_THRESHOLD", raising=False)
