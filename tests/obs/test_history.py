"""Bench-history store tests: append-only records, fingerprints,
schema versioning, and trend rendering."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.history import (
    HISTORY_SCHEMA,
    config_fingerprint,
    figures_in_history,
    history_dir,
    history_enabled,
    history_path,
    history_record,
    load_history,
    record_bench,
    render_trend,
)

BENCH_SCHEMA = "repro-bench/1"


def make_payload(cycles=1000, fence=100, checksum=42,
                 config=None, pruned=0.95):
    return {
        "schema": BENCH_SCHEMA,
        "figure": "figx",
        **({"config": config} if config else {}),
        "rows": [
            {"benchmark": "alpha", "variant": "risotto",
             "cycles": cycles, "fence_cycles": fence,
             "total_cycles": cycles + fence, "fence_share": 0.1,
             "checksum": checksum},
        ],
        "stats": {
            "runs": 1, "wall_seconds": 0.5,
            "fence_cycles": fence, "total_cycles": cycles + fence,
            "enum_pruned_fraction": pruned,
        },
    }


class TestFingerprint:
    def test_measured_values_do_not_change_it(self):
        assert config_fingerprint(make_payload(cycles=1000)) == \
            config_fingerprint(make_payload(cycles=999999,
                                            checksum=7))

    def test_config_changes_it(self):
        assert config_fingerprint(make_payload()) != \
            config_fingerprint(make_payload(
                config={"iterations": 40}))

    def test_cell_set_changes_it(self):
        other = make_payload()
        other["rows"].append(dict(other["rows"][0],
                                  variant="native"))
        assert config_fingerprint(make_payload()) != \
            config_fingerprint(other)


class TestRecord:
    def test_record_shape(self):
        record = history_record(make_payload(), rev="abc",
                                recorded_at="2026-01-01T00:00:00Z")
        assert record["schema"] == HISTORY_SCHEMA
        assert record["figure"] == "figx"
        assert record["rev"] == "abc"
        assert record["rows"]["alpha/risotto"]["cycles"] == 1000
        assert record["rows"]["alpha/risotto"]["checksum"] == 42
        # noisy wall-clock quantities never enter the store
        assert "wall_seconds" not in record["stats"]
        assert record["stats"]["enum_pruned_fraction"] == 0.95

    def test_requires_figure(self):
        with pytest.raises(ReproError, match="no figure"):
            history_record({"rows": []})

    def test_append_only(self, tmp_path):
        record_bench(make_payload(cycles=10), history=tmp_path,
                     rev="r1")
        path = record_bench(make_payload(cycles=20),
                            history=tmp_path, rev="r2")
        assert path == tmp_path / "figx.jsonl"
        records = load_history("figx", history=tmp_path)
        assert [r["rev"] for r in records] == ["r1", "r2"]
        assert [r["rows"]["alpha/risotto"]["cycles"]
                for r in records] == [10, 20]

    def test_unknown_schema_records_are_skipped(self, tmp_path):
        record_bench(make_payload(), history=tmp_path, rev="good")
        with open(tmp_path / "figx.jsonl", "a") as fh:
            fh.write(json.dumps({"schema": "repro-bench-history/99",
                                 "figure": "figx"}) + "\n")
        records = load_history("figx", history=tmp_path)
        assert [r["rev"] for r in records] == ["good"]

    def test_corrupt_line_raises(self, tmp_path):
        with open(tmp_path / "figx.jsonl", "w") as fh:
            fh.write("{not json\n")
        with pytest.raises(ReproError, match="corrupt history"):
            load_history("figx", history=tmp_path)

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history("nothing", history=tmp_path) == []

    def test_figures_in_history(self, tmp_path):
        assert figures_in_history(tmp_path) == []
        record_bench(make_payload(), history=tmp_path)
        other = make_payload()
        other["figure"] = "figy"
        record_bench(other, history=tmp_path)
        assert figures_in_history(tmp_path) == ["figx", "figy"]


class TestEnv:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
        assert history_enabled()
        monkeypatch.setenv("REPRO_BENCH_HISTORY", "0")
        assert not history_enabled()

    def test_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_HISTORY_DIR",
                           str(tmp_path / "store"))
        assert history_dir() == tmp_path / "store"
        assert history_path("figx") == \
            tmp_path / "store" / "figx.jsonl"
        monkeypatch.delenv("REPRO_BENCH_HISTORY_DIR")
        assert history_dir(tmp_path) == tmp_path


class TestWriteBenchJsonRecording:
    def test_record_flag_appends_next_to_export(self, tmp_path,
                                                monkeypatch):
        from repro.analysis.export import write_bench_json
        monkeypatch.delenv("REPRO_BENCH_HISTORY_DIR", raising=False)
        monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
        out = tmp_path / "results" / "bench_figx.json"
        write_bench_json(out, "figx", extra={"n": 1}, record=True)
        records = load_history("figx",
                               history=out.parent / "history")
        assert len(records) == 1
        assert records[0]["figure"] == "figx"

    def test_env_disables_recording(self, tmp_path, monkeypatch):
        from repro.analysis.export import write_bench_json
        monkeypatch.setenv("REPRO_BENCH_HISTORY", "0")
        out = tmp_path / "bench_figx.json"
        write_bench_json(out, "figx", record=True)
        assert not (tmp_path / "history").exists()

    def test_default_does_not_record(self, tmp_path, monkeypatch):
        from repro.analysis.export import write_bench_json
        monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
        write_bench_json(tmp_path / "bench_figx.json", "figx")
        assert not (tmp_path / "history").exists()

    def test_config_survives_roundtrip(self, tmp_path):
        from repro.analysis.export import load_bench_json, \
            write_bench_json
        out = write_bench_json(tmp_path / "b.json", "figx",
                               config={"iterations": 40})
        assert load_bench_json(out)["config"] == {"iterations": 40}


class TestTrend:
    def _records(self):
        return [
            history_record(make_payload(cycles=100), rev="r1",
                           recorded_at="t1"),
            history_record(make_payload(cycles=90), rev="r2",
                           recorded_at="t2"),
        ]

    def test_text_trend(self):
        text = render_trend("figx", self._records())
        assert "perf trend: figx" in text
        assert "alpha/risotto" in text
        assert "-10.0%" in text

    def test_md_trend(self):
        text = render_trend("figx", self._records(), fmt="md")
        assert text.startswith("### figx")
        assert "| alpha/risotto | cycles |" in text

    def test_empty_history(self):
        assert "(no history records)" in render_trend("figx", [])

    def test_unknown_format_rejected(self):
        with pytest.raises(ReproError, match="unknown trend format"):
            render_trend("figx", [], fmt="html")
