"""Metrics across the pool boundary: per-run snapshots from forked
workers must merge into one sweep-wide registry, with colliding label
sets summing instead of clobbering."""

from repro.obs.metrics import MetricsRegistry, label_key
from repro.workloads import run_parallel, verify_grid

# Four cells sharing kind="verify" and one variant label: every row's
# repro_runs_total snapshot lands on the SAME label key, so the merge
# must sum them across workers.
GRID = verify_grid(tests=("MP", "SB", "LB", "R"),
                   models=("x86-tso",))
LABELS = label_key({"kind": "verify", "variant": "x86-tso/dpor"})


def merged_registry(sweep) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.merge(sweep.metrics)
    return reg


class TestPoolBoundaryMerge:
    def test_colliding_counter_labels_sum(self):
        sweep = run_parallel(GRID, workers=2, strict=True)
        reg = merged_registry(sweep)
        series = reg.counter_series("repro_runs_total")
        # One series, count == all four runs — not one-per-worker and
        # not last-write-wins.
        assert series == {LABELS: len(GRID)}

    def test_colliding_histogram_labels_sum(self):
        sweep = run_parallel(GRID, workers=2, strict=True)
        reg = merged_registry(sweep)
        cell = reg.get("repro_run_cycles").series[LABELS]
        assert cell["count"] == len(GRID)
        assert sum(cell["buckets"]) == len(GRID)

    def test_pool_layout_does_not_change_the_merge(self):
        serial = run_parallel(GRID, workers=1, strict=True)
        pooled = run_parallel(GRID, workers=2, strict=True)
        assert serial.metrics == pooled.metrics

    def test_mixed_variants_keep_separate_series(self):
        grid = verify_grid(tests=("MP", "SB"), models=("x86-tso",)) \
            + verify_grid(tests=("MP", "SB"), models=("x86-tso",),
                          reduction="staged")
        sweep = run_parallel(grid, workers=2, strict=True)
        series = merged_registry(sweep).counter_series(
            "repro_runs_total")
        assert series == {
            label_key({"kind": "verify",
                       "variant": "x86-tso/dpor"}): 2,
            label_key({"kind": "verify",
                       "variant": "x86-tso/staged"}): 2,
        }

    def test_every_row_ships_a_snapshot(self):
        sweep = run_parallel(GRID, workers=2, strict=True)
        for row in sweep:
            assert row.metrics["schema"] == "repro-metrics/1"
            assert "repro_runs_total" in row.metrics["metrics"]


class TestMergeEdgeCases:
    def test_empty_snapshot_is_a_noop(self):
        reg = MetricsRegistry()
        reg.counter("c").labels(x="1").inc(3)
        before = reg.snapshot()
        reg.merge({})
        assert reg.snapshot() == before

    def test_merge_into_empty_registry(self):
        # An "empty-worker" parent: never recorded anything itself,
        # only folds incoming snapshots.
        source = MetricsRegistry()
        source.histogram("h").labels(x="1").observe(7)
        sink = MetricsRegistry()
        sink.merge(source.snapshot())
        assert sink.snapshot() == source.snapshot()

    def test_merge_is_associative_over_order(self):
        snaps = []
        for value in (3, 700, 12):
            reg = MetricsRegistry()
            reg.histogram("h").labels(x="1").observe(value)
            reg.counter("c").labels(x="1").inc()
            snaps.append(reg.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        for snap in reversed(snaps):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()

    def test_bucket_mismatch_rejected(self):
        import pytest

        from repro.errors import ReproError
        narrow = MetricsRegistry()
        narrow.histogram("h", buckets=(1, 10)).labels(x="1").observe(5)
        wide = MetricsRegistry()
        wide.histogram("h", buckets=(1, 10, 100)).labels(x="1") \
            .observe(5)
        sink = MetricsRegistry()
        sink.merge(narrow.snapshot())
        with pytest.raises(ReproError, match="bucket layouts"):
            sink.merge(wide.snapshot())
