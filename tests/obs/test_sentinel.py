"""Regression-sentinel tests: noise-aware tolerances, per-metric
direction, floors, and the injected-regression acceptance path."""

import pytest

from repro.errors import ReproError
from repro.obs.history import history_record
from repro.obs.sentinel import (
    Finding,
    SentinelReport,
    check_payload,
    load_floors,
)

BENCH_SCHEMA = "repro-bench/1"


def make_payload(cycles=8000, fence=400, checksum=12345,
                 pruned=0.95, executions=100):
    return {
        "schema": BENCH_SCHEMA,
        "figure": "figx",
        "rows": [
            {"benchmark": "alpha", "variant": "risotto",
             "cycles": cycles, "fence_cycles": fence,
             "total_cycles": cycles + fence, "fence_share": 0.05,
             "checksum": checksum},
        ],
        "stats": {
            "runs": 1, "fence_cycles": fence,
            "total_cycles": cycles + fence,
            "enum_pruned_fraction": pruned,
            "enum_executions": executions,
        },
    }


def baseline_records(n=3, **kwargs):
    return [history_record(make_payload(**kwargs), rev=f"r{i}",
                           recorded_at=f"t{i}") for i in range(n)]


class TestVerdicts:
    def test_unmodified_rerun_is_ok(self):
        report = check_payload(make_payload(), baseline_records())
        assert report.ok()
        assert report.ok(require_baseline=True)
        assert not report.regressions
        assert "verdict: OK" in report.render()

    def test_ten_percent_cycle_regression_fails(self):
        # The acceptance criterion: +10% cycles on a recorded cell
        # must trip the sentinel (rel_tol default is 5%).
        report = check_payload(make_payload(cycles=8800),
                               baseline_records())
        assert not report.ok()
        regressed = {(f.key, f.metric) for f in report.regressions}
        assert ("alpha/risotto", "cycles") in regressed
        assert "verdict: FAIL" in report.render()

    def test_improvement_is_ok_but_reported(self):
        report = check_payload(make_payload(cycles=6400),
                               baseline_records())
        assert report.ok()
        improved = {(f.key, f.metric) for f in report.improvements}
        assert ("alpha/risotto", "cycles") in improved

    def test_up_is_good_direction(self):
        # enum_pruned_fraction: a drop is the regression.
        report = check_payload(make_payload(pruned=0.80),
                               baseline_records())
        assert not report.ok()
        assert any(f.metric == "enum_pruned_fraction"
                   for f in report.regressions)
        report = check_payload(make_payload(pruned=0.99),
                               baseline_records())
        assert report.ok()

    def test_checksum_is_exact(self):
        # Any checksum drift is a determinism break, both directions.
        for checksum in (12344, 12346):
            report = check_payload(make_payload(checksum=checksum),
                                   baseline_records())
            assert any(f.metric == "checksum" and
                       f.kind == "regression"
                       for f in report.findings)

    def test_mad_widens_the_band(self):
        # Baselines scattered +/-10% around 8000: a value inside the
        # observed noise envelope must not fail even though it exceeds
        # the 5% relative band around the median.
        noisy = [history_record(make_payload(cycles=c), rev=f"r{i}")
                 for i, c in enumerate((7200, 8000, 8800))]
        report = check_payload(make_payload(cycles=8600), noisy)
        assert report.ok(), report.render()

    def test_window_limits_baselines(self):
        # Old slow records fall outside the window; only the recent
        # fast ones judge the run.
        records = [history_record(make_payload(cycles=c),
                                  rev=f"r{i}")
                   for i, c in enumerate((12000, 12000, 8000, 8000))]
        assert not check_payload(make_payload(cycles=8800), records,
                                 window=2).ok()
        assert check_payload(make_payload(cycles=8800), records,
                             window=4).ok()

    def test_fingerprint_mismatch_means_no_baseline(self):
        other = make_payload()
        other["config"] = {"iterations": 99}
        report = check_payload(other, baseline_records())
        assert report.ok()
        assert not report.ok(require_baseline=True)
        assert report.missing

    def test_new_cell_flagged_missing(self):
        current = make_payload()
        current["rows"].append(dict(current["rows"][0],
                                    variant="native"))
        report = check_payload(current, baseline_records())
        # Fingerprint changed (cell set differs) — whole run has no
        # baseline rather than a spurious pass.
        assert report.missing
        assert report.ok()
        assert not report.ok(require_baseline=True)


class TestFloors:
    def test_floor_regression(self):
        report = check_payload(make_payload(pruned=0.85), [],
                               floors={"enum_pruned_fraction": 0.9})
        assert not report.ok()
        floor = [f for f in report.regressions if f.scope == "floor"]
        assert floor and floor[0].metric == "enum_pruned_fraction"

    def test_floor_pass(self):
        report = check_payload(make_payload(pruned=0.95), [],
                               floors={"enum_pruned_fraction": 0.9})
        assert report.ok()

    def test_load_floors_modern_shape(self, tmp_path):
        path = tmp_path / "floors.json"
        path.write_text('{"floors": {"enum_pruned_fraction": 0.9}}')
        assert load_floors(path) == {"enum_pruned_fraction": 0.9}

    def test_load_floors_legacy_verify_floor(self, tmp_path):
        # The seed results/verify_floor.json shape keeps working.
        path = tmp_path / "verify_floor.json"
        path.write_text(
            '{"comment": "seed", "min_pruned_fraction": 0.9}')
        assert load_floors(path) == {"enum_pruned_fraction": 0.9}

    def test_load_floors_rejects_unknown_shape(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"something": 1}')
        with pytest.raises(ReproError, match="floor"):
            load_floors(path)

    def test_committed_seed_floor_loads(self):
        import pathlib
        seed = pathlib.Path(__file__).parents[2] / "results" \
            / "verify_floor.json"
        floors = load_floors(seed)
        assert floors["enum_pruned_fraction"] == pytest.approx(0.9)


class TestReportRendering:
    def test_findings_have_readable_str(self):
        finding = Finding(figure="figx", scope="rows",
                          key="alpha/risotto", metric="cycles",
                          value=8800.0, baseline=8000.0,
                          tolerance=400.0, kind="regression",
                          detail="median of 3")
        text = str(finding)
        assert "REGRESSION" in text
        assert "alpha/risotto" in text

    def test_empty_report_is_ok(self):
        report = SentinelReport(figure="figx", fingerprint="f" * 16,
                                records_used=0, findings=[])
        assert report.ok()
        assert "verdict: OK" in report.render()

    def test_render_lists_regressions(self):
        report = check_payload(make_payload(cycles=8800),
                               baseline_records())
        text = report.render()
        assert "cycles" in text
        assert "regression" in text.lower()
