"""Cross-worker trace propagation: a pooled sweep with tracing on
must leave ONE merged Chrome trace with a lane per worker pid and a
``run.spec`` span for every spec."""

import json
import os

import pytest

from repro.errors import ReproError
from repro.obs.trace import (
    Tracer,
    install_tracer,
    validate_chrome_events,
    validate_chrome_trace,
)
from repro.workloads import run_parallel, verify_grid
from repro.workloads.parallel import deterministic_row

GRID = verify_grid(tests=("MP", "SB", "LB", "R"),
                   models=("x86-tso",))


@pytest.fixture
def tracer():
    live = Tracer()
    previous = install_tracer(live)
    yield live
    install_tracer(previous)


def spans(tracer, name):
    return [e for e in tracer.events
            if e["ph"] == "X" and e["name"] == name]


class TestPooledMerge:
    def test_two_worker_sweep_merges_into_one_trace(self, tracer,
                                                    tmp_path):
        sweep = run_parallel(GRID, workers=2, strict=True)
        assert sweep.workers == 2

        run_spans = spans(tracer, "run.spec")
        assert len(run_spans) == len(GRID)
        assert {s["args"]["benchmark"] for s in run_spans} == \
            {"MP", "SB", "LB", "R"}

        # Every span from a forked worker carries the worker's own
        # pid, not the inherited parent pid.
        worker_pids = {s["pid"] for s in run_spans}
        assert worker_pids, "no worker pids on run.spec spans"
        assert os.getpid() not in worker_pids
        assert 1 <= len(worker_pids) <= 2

        # Each worker lane is named via a process_name metadata event.
        meta = [e for e in tracer.events if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == worker_pids
        for event in meta:
            assert event["args"]["name"].startswith("repro-worker-")

        # The merged document passes the same validator CI uses.
        path = tracer.write_chrome(tmp_path / "trace.json")
        assert validate_chrome_trace(path) == len(tracer.events)
        with open(path) as fh:
            doc = json.load(fh)
        assert all(e["ts"] >= 0 for e in doc["traceEvents"])

    def test_rows_carry_events_across_the_boundary(self, tracer):
        sweep = run_parallel(GRID, workers=2, strict=True)
        for row in sweep:
            assert row.trace_events, row.benchmark
            assert row.trace_epoch_ns > 0
            assert any(e["name"] == "run.spec"
                       for e in row.trace_events)

    def test_serial_sweep_records_without_duplication(self, tracer):
        run_parallel(GRID, workers=1, strict=True)
        # workers==1 runs in-process: events land in the parent tracer
        # directly and the merge step must not re-add them.
        assert len(spans(tracer, "run.spec")) == len(GRID)
        assert not [e for e in tracer.events if e["ph"] == "M"]

    def test_deterministic_row_zeroes_trace_fields(self, tracer):
        sweep = run_parallel(GRID[:1], workers=1, strict=True)
        row = sweep.rows[0]
        assert row.trace_events
        normalized = deterministic_row(row)
        assert normalized.trace_events == ()
        assert normalized.trace_epoch_ns == 0

    def test_layouts_agree_after_normalization(self, tracer):
        serial = run_parallel(GRID, workers=1, strict=True)
        pooled = run_parallel(GRID, workers=2, strict=True)
        for left, right in zip(serial, pooled):
            assert deterministic_row(left) == deterministic_row(right)


class TestMergeEvents:
    def test_rebases_onto_parent_epoch(self):
        parent = Tracer(epoch_ns=1_000_000)
        merged = parent.merge_events(
            [{"name": "w", "ph": "i", "ts": 5.0, "pid": 9,
              "tid": 0, "s": "t", "args": {}}],
            epoch_ns=3_000_000)
        assert merged == 1
        # worker epoch is 2ms after the parent's: 5us + 2000us.
        assert parent.events[0]["ts"] == pytest.approx(2005.0)
        assert parent.events[0]["pid"] == 9

    def test_clamps_pre_epoch_timestamps(self):
        parent = Tracer(epoch_ns=5_000_000)
        parent.merge_events(
            [{"name": "w", "ph": "i", "ts": 1.0, "pid": 9,
              "tid": 0, "s": "t", "args": {}}],
            epoch_ns=1_000_000)
        assert parent.events[0]["ts"] == 0.0

    def test_copies_events(self):
        parent = Tracer()
        source = {"name": "w", "ph": "i", "ts": 1.0, "pid": 9,
                  "tid": 0, "s": "t", "args": {}}
        parent.merge_events([source], epoch_ns=parent.epoch_ns + 1000)
        assert source["ts"] == 1.0  # the caller's dict is untouched


class TestValidatorMetadataPhase:
    def test_metadata_event_validates(self):
        tracer = Tracer()
        tracer.process_metadata(1234, "repro-worker-1234")
        assert validate_chrome_events(tracer.events) == 1

    def test_metadata_without_name_rejected(self):
        with pytest.raises(ReproError, match="args.name"):
            validate_chrome_events([
                {"name": "process_name", "ph": "M", "ts": 0,
                 "pid": 1, "tid": 0, "args": {}},
            ])
