"""Tracer tests: event shapes, output formats, and the
zero-overhead-when-disabled contract."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.trace import (
    NullTracer,
    Tracer,
    get_tracer,
    install_tracer,
    trace_disable,
    trace_enable,
    validate_chrome_events,
    validate_chrome_trace,
)


@pytest.fixture(autouse=True)
def _reset_tracer():
    yield
    trace_disable()


class TestNullTracer:
    def test_default_tracer_is_disabled(self):
        tracer = get_tracer()
        assert not tracer.enabled
        assert tracer.events == ()

    def test_span_is_shared_noop(self):
        tracer = NullTracer()
        span = tracer.span("x", pc=1)
        assert span is tracer.span("y")  # one shared instance
        with span:
            pass
        assert tracer.events == ()

    def test_disabled_records_nothing(self):
        """The overhead guard: event/counter comparison, not timing."""
        tracer = get_tracer()
        assert not tracer.enabled
        with tracer.span("dbt.translate", pc=0x400000):
            tracer.instant("mark")
            tracer.counter("progress", steps=10)
        assert tracer.events == ()


class TestTracer:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("translate", cat="dbt", pc=7):
            pass
        (event,) = tracer.events
        assert event["name"] == "translate"
        assert event["ph"] == "X"
        assert event["cat"] == "dbt"
        assert event["args"] == {"pc": 7}
        assert event["dur"] >= 0
        assert event["ts"] >= 0

    def test_instant_and_counter(self):
        tracer = Tracer()
        tracer.instant("mark", detail=1)
        tracer.counter("progress", steps=5, cycles=100)
        instant, counter = tracer.events
        assert instant["ph"] == "i"
        assert counter["ph"] == "C"
        assert counter["args"] == {"steps": 5, "cycles": 100}

    def test_nested_spans_record_inner_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [e["name"] for e in tracer.events]
        assert names == ["inner", "outer"]

    def test_enable_disable_roundtrip(self):
        live = trace_enable()
        assert get_tracer() is live
        assert trace_enable() is live  # idempotent
        trace_disable()
        assert not get_tracer().enabled

    def test_install_returns_previous(self):
        mine = Tracer()
        previous = install_tracer(mine)
        assert get_tracer() is mine
        install_tracer(previous)

    def test_clear(self):
        tracer = Tracer()
        tracer.instant("x")
        tracer.clear()
        assert tracer.events == []


class TestOutputFormats:
    def test_chrome_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", pc=1):
            tracer.instant("i")
        path = tmp_path / "trace.json"
        tracer.write_chrome(path)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
        assert validate_chrome_trace(path) == 2

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.instant("a")
        tracer.instant("b")
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "a"


class TestValidation:
    def _event(self, **over):
        event = {"name": "x", "ph": "i", "ts": 1.0, "pid": 1, "tid": 0}
        event.update(over)
        return event

    def test_accepts_emitted_subset(self):
        events = [
            self._event(),
            self._event(ph="X", dur=2.0),
            self._event(ph="C"),
        ]
        assert validate_chrome_events(events) == 3

    def test_rejects_non_list(self):
        with pytest.raises(ReproError, match="must be a list"):
            validate_chrome_events({"not": "a list"})

    @pytest.mark.parametrize("bad, match", [
        ({"ph": "B"}, "unknown phase"),
        ({"ts": -1.0}, "bad ts"),
        ({"ts": "soon"}, "bad ts"),
        ({"name": ""}, "bad name"),
    ])
    def test_rejects_bad_fields(self, bad, match):
        with pytest.raises(ReproError, match=match):
            validate_chrome_events([self._event(**bad)])

    def test_rejects_missing_key(self):
        event = self._event()
        del event["pid"]
        with pytest.raises(ReproError, match="missing 'pid'"):
            validate_chrome_events([event])

    def test_complete_event_needs_duration(self):
        with pytest.raises(ReproError, match="bad dur"):
            validate_chrome_events([self._event(ph="X")])

    def test_file_validation_errors(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ReproError, match="unreadable"):
            validate_chrome_trace(missing)
        bad = tmp_path / "bad.json"
        bad.write_text('{"no": "traceEvents"}')
        with pytest.raises(ReproError, match="no traceEvents"):
            validate_chrome_trace(bad)


class TestPipelineIntegration:
    def test_engine_emits_translation_spans(self):
        """A traced run records the pipeline's span hierarchy; the
        same run with tracing disabled records nothing."""
        from repro.workloads import SPEC_BY_NAME, run_kernel

        spec = SPEC_BY_NAME["histogram"]
        tracer = Tracer()
        install_tracer(tracer)
        try:
            traced = run_kernel(spec, "risotto", seed=7)
        finally:
            trace_disable()
        names = {e["name"] for e in tracer.events}
        for expected in ("dbt.translate", "dbt.frontend",
                         "dbt.optimize", "dbt.backend", "dbt.install",
                         "opt.fence_merge", "machine.run"):
            assert expected in names, expected

        null = get_tracer()
        assert not null.enabled
        untraced = run_kernel(spec, "risotto", seed=7)
        assert null.events == ()
        # Tracing must not perturb the simulation itself.
        assert traced.result.elapsed_cycles == \
            untraced.result.elapsed_cycles
        assert traced.checksum == untraced.checksum
