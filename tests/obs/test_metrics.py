"""Metrics registry tests: series semantics, label encoding, and the
snapshot/merge protocol that crosses the run_parallel process
boundary."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    get_registry,
    label_key,
    parse_labels,
    set_registry,
)


class TestLabelKey:
    def test_sorted_roundtrip(self):
        key = label_key({"variant": "qemu", "kind": "kernel"})
        assert key == "kind=kernel,variant=qemu"
        assert parse_labels(key) == {"kind": "kernel",
                                     "variant": "qemu"}

    def test_empty(self):
        assert label_key({}) == ""
        assert parse_labels("") == {}

    @pytest.mark.parametrize("labels", [
        {"bad,name": "x"}, {"k": "a,b"}, {"k": "a=b"},
    ])
    def test_reserved_characters_rejected(self, labels):
        with pytest.raises(ReproError):
            label_key(labels)


class TestSeries:
    def test_counter_semantics(self):
        reg = MetricsRegistry()
        runs = reg.counter("runs_total", "runs")
        runs.inc()
        runs.inc(4)
        assert runs.value == 5
        with pytest.raises(ReproError, match="only go up"):
            runs.inc(-1)

    def test_gauge_allows_decrease(self):
        reg = MetricsRegistry()
        depth = reg.gauge("queue_depth", "depth")
        depth.set(10)
        depth.inc(-3)
        assert depth.value == 7

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency", "lat", buckets=(10, 100))
        for v in (5, 50, 500):
            hist.observe(v)
        snap = reg.snapshot()["metrics"]["latency"]
        (series,) = snap["series"].values()
        assert series["count"] == 3
        assert series["sum"] == 555
        # one observation landed in each bucket (last is +Inf)
        assert series["buckets"] == [1, 1, 1]

    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        runs = reg.counter("runs_total", "runs")
        runs.labels(variant="qemu").inc(2)
        runs.labels(variant="risotto").inc(3)
        series = reg.counter_series("runs_total")
        assert series[label_key({"variant": "qemu"})] == 2
        assert series[label_key({"variant": "risotto"})] == 3
        assert reg.total("runs_total") == 5

    def test_kind_conflict(self):
        reg = MetricsRegistry()
        reg.counter("x", "a counter")
        assert reg.counter("x", "again") is not None  # get-or-create
        with pytest.raises(ReproError, match="already registered"):
            reg.gauge("x", "but as a gauge")


class TestSnapshotMerge:
    def _worker_snapshot(self, variant, cycles):
        reg = MetricsRegistry()
        reg.counter("runs_total", "runs").labels(variant=variant).inc()
        reg.histogram("cycles", "c", buckets=(100, 1000)) \
            .observe(cycles)
        reg.gauge("workers", "w").set(1)
        return reg.snapshot()

    def test_schema_tag(self):
        assert self._worker_snapshot("qemu", 5)["schema"] == \
            SNAPSHOT_SCHEMA

    def test_merge_across_json_boundary(self):
        """Snapshots survive the pickling/JSON trip workers take."""
        snaps = [
            json.loads(json.dumps(self._worker_snapshot("qemu", 50))),
            json.loads(json.dumps(self._worker_snapshot("qemu", 500))),
            json.loads(json.dumps(
                self._worker_snapshot("risotto", 5000))),
        ]
        parent = MetricsRegistry()
        for snap in snaps:
            parent.merge(snap)
        assert parent.total("runs_total") == 3
        series = parent.counter_series("runs_total")
        assert series[label_key({"variant": "qemu"})] == 2
        merged = parent.snapshot()["metrics"]["cycles"]
        (hist,) = merged["series"].values()
        assert hist["count"] == 3
        assert hist["sum"] == 5550

    def test_merge_rejects_wrong_schema(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError, match="schema"):
            reg.merge({"schema": "bogus/9", "metrics": {}})

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        a.histogram("h", "x", buckets=(1, 2)).observe(1)
        b = MetricsRegistry()
        b.histogram("h", "x", buckets=(1, 2, 3)).observe(1)
        with pytest.raises(ReproError, match="bucket"):
            a.merge(b.snapshot())

    def test_merge_gauge_last_write_wins(self):
        a = MetricsRegistry()
        a.gauge("depth", "d").set(3)
        b = MetricsRegistry()
        b.gauge("depth", "d").set(9)
        a.merge(b.snapshot())
        assert a.get("depth").value == 9


class TestModuleRegistry:
    def test_set_and_restore(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)
        assert get_registry() is previous
