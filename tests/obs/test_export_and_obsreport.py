"""bench_*.json export roundtrip and obsreport rendering tests."""

import json

import pytest

from repro.analysis import BenchTable
from repro.analysis.export import (
    BENCH_SCHEMA,
    bench_payload,
    load_bench_json,
    write_bench_json,
)
from repro.analysis.obsreport import (
    main,
    render_bench,
    render_file,
    render_metrics,
    render_trace,
)
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.workloads import RunFailure, RunRow, SweepResult


@pytest.fixture
def sweep():
    reg = MetricsRegistry()
    reg.counter("repro_runs_total", "runs") \
        .labels(kind="kernel", variant="qemu").inc()
    rows = [
        RunRow(benchmark="alpha", variant="qemu", cycles=1000,
               fence_cycles=400, total_cycles=1000, checksum=7,
               wall_seconds=0.5, blocks_translated=10,
               block_dispatches=40, chained_dispatches=30,
               fence_origin_cycles={"RMOV->Frr;ld": 250,
                                    "WMOV->Fmw;st": 150},
               hot_blocks=((0x400290, 12, 900), (0x400300, 3, 100)),
               metrics=reg.snapshot()),
        RunRow(benchmark="alpha", variant="risotto", cycles=800,
               fence_cycles=100, total_cycles=800, checksum=7,
               wall_seconds=0.25,
               fence_origin_cycles={"RMOV->ld;Frm": 60,
                                    "fence_merge:strengthen": 40}),
        # Native runs execute no translated blocks: their profile is
        # *untracked* (None), not merely empty — exports must keep the
        # distinction visible.
        RunRow(benchmark="alpha", variant="native", cycles=600,
               fence_cycles=0, total_cycles=600, checksum=7,
               wall_seconds=0.2, hot_blocks=None),
    ]
    failures = [RunFailure(kind="kernel", benchmark="beta",
                           variant="qemu", seed=7,
                           error="ReproError: boom",
                           code="repro")]
    return SweepResult(rows=rows, wall_seconds=0.6, workers=2,
                       failures=failures, metrics=reg.snapshot())


@pytest.fixture
def table(sweep):
    return BenchTable.from_rows("fig12", sweep)


class TestExport:
    def test_payload_shape(self, table, sweep):
        payload = bench_payload("fig12", table=table, sweep=sweep)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["figure"] == "fig12"
        assert payload["baseline"] == table.baseline
        qemu_row = next(r for r in payload["rows"]
                        if r["variant"] == "qemu")
        assert qemu_row["fence_cycles_by_origin"] == {
            "RMOV->Frr;ld": 250, "WMOV->Fmw;st": 150}
        stats = payload["stats"]
        assert stats["runs"] == 3
        assert stats["failed_runs"] == 1
        assert stats["fence_cycles_by_origin"]["RMOV->ld;Frm"] == 60
        assert payload["failures"] == [
            "kernel:beta/qemu (seed 7): [repro] ReproError: boom"]
        assert payload["hot_blocks"]["alpha/qemu"] == [
            [0x400290, 12, 900], [0x400300, 3, 100]]
        # Untracked (native) profiles export an explicit null; tracked-
        # but-empty profiles (risotto's default) are omitted entirely.
        assert payload["hot_blocks"]["alpha/native"] is None
        assert "alpha/risotto" not in payload["hot_blocks"]
        assert "repro_runs_total" in payload["metrics"]["metrics"]

    def test_origin_buckets_partition_fence_cycles(self, table):
        for row in table.rows.values():
            assert sum(row.fence_origin_cycles.values()) == \
                row.fence_cycles

    def test_roundtrip(self, tmp_path, table, sweep):
        path = write_bench_json(tmp_path / "results" / "bench.json",
                                "fig12", table=table, sweep=sweep)
        payload = load_bench_json(path)
        assert payload == bench_payload("fig12", table=table,
                                        sweep=sweep)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": "repro-bench/99"}))
        with pytest.raises(ReproError, match="unsupported bench"):
            load_bench_json(path)

    def test_load_rejects_unreadable(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_bench_json(tmp_path / "missing.json")
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(ReproError, match="cannot read"):
            load_bench_json(garbled)


class TestRenderBench:
    def test_renders_all_sections(self, table, sweep):
        text = render_bench(
            bench_payload("fig12", table=table, sweep=sweep),
            source="bench_fig12.json")
        assert "=== bench export: fig12 (bench_fig12.json) ===" in text
        assert "alpha" in text and "risotto" in text
        assert "runs: 3   failed: 1   workers: 2" in text
        assert "fence cycles by origin:" in text
        assert "RMOV->Frr;ld" in text
        assert "FAILED: kernel:beta/qemu (seed 7): " \
            "[repro] ReproError: boom" in text
        assert "hot blocks" in text and "0x0000400290" in text
        assert "repro_runs_total [counter]" in text
        assert "kind=kernel, variant=qemu" in text

    def test_untracked_profile_renders(self, table, sweep):
        # Regression test: native rows export hot_blocks as an
        # explicit null, and the renderer used to crash iterating it.
        payload = bench_payload("fig12", table=table, sweep=sweep)
        assert payload["hot_blocks"]["alpha/native"] is None
        text = render_bench(payload)
        assert "alpha/native: (profile not tracked)" in text

    def test_minimal_payload(self):
        text = render_bench({"figure": "x"})
        assert text == "=== bench export: x (inline) ==="

    def test_config_section_roundtrips(self, table, sweep):
        payload = bench_payload("fig12", table=table, sweep=sweep,
                                config={"iterations": 40, "seed": 7})
        assert payload["config"] == {"iterations": 40, "seed": 7}


class TestRenderMetrics:
    def test_histogram_series(self):
        reg = MetricsRegistry()
        reg.histogram("cycles", "c", buckets=(10,)).observe(5)
        text = render_metrics(reg.snapshot())
        assert "cycles [histogram]" in text
        assert "count=1 sum=5" in text
        assert "(no labels)" in text


class TestRenderTrace:
    def _trace_payload(self):
        tracer = Tracer()
        with tracer.span("dbt.translate", pc=1):
            with tracer.span("dbt.frontend"):
                pass
        tracer.counter("machine.progress", steps=10)
        tracer.instant("mark")
        return {"traceEvents": tracer.to_chrome()["traceEvents"]}

    def test_span_summary(self):
        text = render_trace(self._trace_payload(), source="t.json")
        assert "=== chrome trace (t.json) ===" in text
        assert "(2 spans, 1 counter samples, 1 instants)" in text
        assert "dbt.translate" in text and "dbt.frontend" in text

    def test_invalid_events_rejected(self):
        with pytest.raises(ReproError):
            render_trace({"traceEvents": [{"name": "x"}]})


class TestCli:
    def test_dispatch_on_content(self, tmp_path, table, sweep):
        bench = write_bench_json(tmp_path / "bench_fig12.json",
                                 "fig12", table=table, sweep=sweep)
        tracer = Tracer()
        with tracer.span("dbt.translate"):
            pass
        trace = tracer.write_chrome(tmp_path / "trace.json")
        assert "bench export" in render_file(bench)
        assert "chrome trace" in render_file(trace)

    def test_dispatch_rejects_unknown(self, tmp_path):
        unknown = tmp_path / "other.json"
        unknown.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ReproError, match="neither"):
            render_file(unknown)

    def test_main_prints_and_exits_clean(self, tmp_path, capsys,
                                         table, sweep):
        bench = write_bench_json(tmp_path / "bench.json", "fig12",
                                 table=table, sweep=sweep)
        assert main([str(bench)]) == 0
        out = capsys.readouterr().out
        assert "bench export: fig12" in out

    def test_main_reports_errors(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        assert main([str(missing)]) == 1
        err = capsys.readouterr().err
        assert "obsreport:" in err
