"""Tests for the typed job schema (:mod:`repro.serve.jobs`).

The contract under test: a JobSpec/JobResult survives its JSON codec
unchanged, malformed payloads fail as typed :class:`JobError`s (never
tracebacks), the error taxonomy classifies exceptions subclass-first,
and local execution through a job is bit-identical to the direct
``api`` call it replaces.
"""

import os

import pytest

from repro import api
from repro.core import behavior_cache
from repro.dbt import xlat_cache
from repro.errors import (
    DecodeError,
    ErrorInfo,
    JobError,
    ReproError,
    classify_error,
    error_code,
)
from repro.machine.timing import CostModel
from repro.machine.weakmem import BufferMode
from repro.serve.jobs import (
    JOB_SCHEMA,
    JobResult,
    JobSpec,
    batch_key,
    cache_tier,
    cas_job,
    execute_job,
    kernel_job,
    library_job,
    run_job,
    sanitize_namespace,
    scoped_namespace,
)
from repro.workloads.casbench import CasConfig
from repro.workloads.kernels import KernelSpec

TINY = KernelSpec("tiny", loads=2, stores=1, alu=2, fp=1,
                  iterations=40, threads=2, working_set=64)


class TestJobSpecCodec:
    def test_kernel_roundtrip(self):
        job = kernel_job(TINY, variant="risotto", seed=3,
                         costs=CostModel(), max_steps=1000,
                         buffer_mode=BufferMode.TSO,
                         tier2_threshold=16, namespace="t1",
                         job_id="j-1")
        assert JobSpec.from_json(job.to_json()) == job

    def test_library_roundtrip(self):
        job = library_job("sqrt", (7,), 4, variant="qemu",
                          library="libm", setup="digest-buffer",
                          namespace="t2")
        twin = JobSpec.from_json(job.to_json())
        assert twin == job
        assert twin.args == (7,)  # tuple restored, not list

    def test_cas_roundtrip(self):
        job = cas_job(CasConfig(threads=2, variables=1, attempts=9),
                      variant="tcg-ver")
        assert JobSpec.from_json(job.to_json()) == job

    def test_schema_tag_checked(self):
        payload = kernel_job(TINY, variant="qemu").to_json()
        payload["schema"] = "repro-serve/99"
        with pytest.raises(JobError, match="unsupported"):
            JobSpec.from_json(payload)

    def test_unknown_buffer_mode_is_typed(self):
        payload = kernel_job(TINY, variant="qemu").to_json()
        payload["buffer_mode"] = "psychic"
        with pytest.raises(JobError, match="buffer_mode"):
            JobSpec.from_json(payload)

    def test_malformed_payload_is_typed(self):
        with pytest.raises(JobError, match="malformed"):
            JobSpec.from_json({"schema": JOB_SCHEMA, "kind": "kernel",
                               "variant": "qemu"})  # no benchmark
        with pytest.raises(JobError, match="object"):
            JobSpec.from_json("not a dict")


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(JobError, match="unknown job kind"):
            JobSpec(kind="yoga", benchmark="b",
                    variant="qemu").validate()

    def test_missing_payload_per_kind(self):
        with pytest.raises(JobError, match="kernel payload"):
            JobSpec(kind="kernel", benchmark="b",
                    variant="qemu").validate()
        with pytest.raises(JobError, match="library payload"):
            JobSpec(kind="library", benchmark="b", variant="qemu",
                    function="sqrt", calls=0).validate()
        with pytest.raises(JobError, match="cas payload"):
            JobSpec(kind="cas", benchmark="b",
                    variant="qemu").validate()

    def test_namespace_must_be_sanitized(self):
        with pytest.raises(JobError, match="namespace"):
            JobSpec(kind="kernel", benchmark="b", variant="qemu",
                    kernel=TINY, namespace="../evil").validate()
        # The sanitized spelling of the same intent is fine.
        JobSpec(kind="kernel", benchmark="b", variant="qemu",
                kernel=TINY,
                namespace=sanitize_namespace("te nant/1")).validate()

    def test_sanitize_namespace(self):
        assert sanitize_namespace("alice") == "alice"
        assert sanitize_namespace(" a/b:c ") == "abc"
        assert sanitize_namespace("..") == ""
        assert sanitize_namespace("...") == ""
        assert sanitize_namespace("a.b-c_d") == "a.b-c_d"


class TestJobResultCodec:
    def test_success_roundtrip(self):
        result = JobResult(job_id="j", kind="kernel", benchmark="b",
                           variant="qemu", seed=7, namespace="n",
                           cycles=10, fence_cycles=2, total_cycles=10,
                           checksum=123, wall_seconds=0.5,
                           blocks_translated=4, xlat_hits=3,
                           xlat_misses=1, xlat_disk_hits=2,
                           cache_tier="cold", queue_seconds=0.01,
                           batch_size=3)
        assert JobResult.from_json(result.to_json()) == result

    def test_error_roundtrip(self):
        job = kernel_job(TINY, variant="qemu", job_id="j-err")
        result = JobResult.from_error(
            job, ErrorInfo("timeout", "TimeoutError: slow", True))
        twin = JobResult.from_json(result.to_json())
        assert not twin.ok
        assert twin.error == ErrorInfo("timeout",
                                       "TimeoutError: slow", True)
        assert twin.job_id == "j-err"

    def test_outcome_never_serialized(self):
        result = JobResult(job_id="", kind="cas", benchmark="2-2",
                           variant="qemu", seed=7, outcome=object())
        assert "outcome" not in result.to_json()

    def test_schema_tag_checked(self):
        with pytest.raises(JobError, match="unsupported"):
            JobResult.from_json({"schema": "repro-serve/0"})


class TestCacheTier:
    def test_precedence(self):
        assert cache_tier(0, 1, 0) == "cold"
        assert cache_tier(5, 1, 5) == "cold"  # any miss wins
        assert cache_tier(5, 0, 2) == "disk"
        assert cache_tier(5, 0, 0) == "memory"
        assert cache_tier(0, 0, 0) == "none"


class TestErrorTaxonomy:
    def test_subclass_ordering(self):
        # DecodeError is a ReproError; the taxonomy must see the
        # subclass first, not collapse everything to "repro".
        assert error_code(DecodeError("bad byte")) == "decode"
        assert error_code(ReproError("plain")) == "repro"
        assert error_code(JobError("nope")) == "bad-request"

    def test_stdlib_and_fallback_codes(self):
        assert error_code(TimeoutError("slow")) == "timeout"
        assert error_code(OSError("disk")) == "io"
        assert error_code(ValueError("what")) == "internal"

    def test_retryable_flags(self):
        assert classify_error(TimeoutError("slow")).retryable
        assert classify_error(OSError("disk")).retryable
        assert classify_error(ValueError("bug")).retryable
        assert not classify_error(JobError("bad job")).retryable
        assert not classify_error(ReproError("model says no")).retryable

    def test_message_names_the_type(self):
        info = classify_error(ReproError("boom"))
        assert info == ErrorInfo("repro", "ReproError: boom", False)
        assert ErrorInfo.from_json(info.to_json()) == info


class TestScopedNamespace:
    def test_sets_and_restores_both_envs(self, monkeypatch):
        monkeypatch.delenv(xlat_cache.NAMESPACE_ENV, raising=False)
        monkeypatch.setenv(behavior_cache.NAMESPACE_ENV, "ambient")
        with scoped_namespace("tenant"):
            assert os.environ[xlat_cache.NAMESPACE_ENV] == "tenant"
            assert os.environ[behavior_cache.NAMESPACE_ENV] == "tenant"
        assert xlat_cache.NAMESPACE_ENV not in os.environ
        assert os.environ[behavior_cache.NAMESPACE_ENV] == "ambient"

    def test_empty_namespace_inherits_environment(self, monkeypatch):
        # "" must NOT clear ambient namespaces: local api.run_* calls
        # behave exactly as before the serve layer existed.
        monkeypatch.setenv(xlat_cache.NAMESPACE_ENV, "ambient")
        with scoped_namespace(""):
            assert os.environ[xlat_cache.NAMESPACE_ENV] == "ambient"


class TestLocalExecution:
    def test_execute_job_matches_direct_call(self):
        direct = api.run_kernel(TINY, variant="risotto", seed=5)
        result = execute_job(kernel_job(TINY, variant="risotto",
                                        seed=5))
        assert result.ok
        assert result.checksum == direct.checksum
        assert result.cycles == direct.result.elapsed_cycles
        assert result.outcome.checksum == direct.checksum

    def test_api_submit_is_execute_job(self):
        job = cas_job(CasConfig(threads=2, variables=2, attempts=20),
                      variant="qemu")
        via_api = api.submit(job)
        direct = api.run_cas_benchmark(
            CasConfig(threads=2, variables=2, attempts=20),
            variant="qemu")
        assert via_api.cycles == direct.result.elapsed_cycles
        assert via_api.outcome.checksum == direct.checksum

    def test_run_job_classifies_unknown_library(self):
        job = library_job("sqrt", (7,), 2, variant="qemu",
                          library="libdoesnotexist")
        result = run_job(job)
        assert not result.ok
        assert result.error.code == "bad-request"
        assert "libdoesnotexist" in result.error.message

    def test_run_job_classifies_unknown_setup(self):
        job = library_job("sqrt", (7,), 2, variant="qemu",
                          library="libm", setup="mystery")
        result = run_job(job)
        assert not result.ok
        assert result.error.code == "bad-request"

    def test_run_job_never_raises_on_invalid_spec(self):
        result = run_job(JobSpec(kind="kernel", benchmark="x",
                                 variant="qemu"))
        assert not result.ok
        assert result.error.code == "bad-request"


class TestBatchKey:
    def test_namespace_partitions(self):
        a = kernel_job(TINY, variant="qemu", namespace="a")
        b = kernel_job(TINY, variant="risotto", namespace="a")
        c = cas_job(CasConfig(2, 2, 9), variant="qemu", namespace="c")
        assert batch_key(a) == batch_key(b)  # variants may share
        assert batch_key(a) != batch_key(c)
