"""Unit tests for the loadgen primitives plus one small end-to-end
replay.

``percentile`` and ``form_batches`` are the pure functions the serve
stack leans on (latency reporting and dispatch grouping); both get
exhaustive table tests here.  The end-to-end case replays a tiny mix
against an in-process server and validates the bench export.
"""

import json

import pytest

from repro.analysis.export import load_bench_json
from repro.errors import JobError, ReproError
from repro.serve.jobs import JobResult, batch_key, cas_job, kernel_job
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadgenReport,
    bench_extra,
    gen_jobs,
    latency_summary,
    percentile,
    run_loadgen,
    synthesized_rows,
    write_report,
)
from repro.serve.server import ReproServer, ServeConfig, form_batches
from repro.workloads.casbench import CasConfig
from repro.workloads.kernels import KernelSpec

TINY = KernelSpec("tiny", loads=2, stores=1, alu=2, fp=1,
                  iterations=40, threads=2, working_set=64)


class TestPercentile:
    def test_single_value(self):
        assert percentile([42.0], 0) == 42.0
        assert percentile([42.0], 50) == 42.0
        assert percentile([42.0], 100) == 42.0

    def test_extremes_are_min_and_max(self):
        xs = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(xs, 0) == 1.0
        assert percentile(xs, 100) == 5.0

    def test_linear_interpolation(self):
        xs = [10.0, 20.0, 30.0, 40.0]
        assert percentile(xs, 50) == 25.0
        assert percentile(xs, 25) == pytest.approx(17.5)
        assert percentile(xs, 75) == pytest.approx(32.5)

    def test_exact_rank_no_interpolation(self):
        xs = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(xs, 50) == 30.0
        assert percentile(xs, 25) == 20.0

    def test_input_order_irrelevant(self):
        assert percentile([3.0, 1.0, 2.0], 50) == \
            percentile([1.0, 2.0, 3.0], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ReproError, match="percentile q"):
            percentile([1.0], -1)
        with pytest.raises(ReproError, match="percentile q"):
            percentile([1.0], 101)

    def test_empty_sample(self):
        with pytest.raises(ReproError, match="empty"):
            percentile([], 50)

    def test_p99_near_max(self):
        xs = [float(i) for i in range(100)]
        assert percentile(xs, 99) == pytest.approx(98.01)


class TestLatencySummary:
    def test_empty(self):
        assert latency_summary([]) == {"count": 0}

    def test_keys_and_ordering(self):
        summary = latency_summary([0.010, 0.020, 0.030])
        assert summary["count"] == 3
        assert summary["min"] <= summary["p50"] <= summary["p95"] \
            <= summary["p99"] <= summary["max"]
        assert summary["mean"] == pytest.approx(0.020)


class TestFormBatches:
    def test_single_key_one_batch(self):
        items = ["a", "b", "c"]
        assert form_batches(items, 8, key=lambda _: ()) == [items]

    def test_size_cap_splits(self):
        items = list(range(5))
        batches = form_batches(items, 2, key=lambda _: ())
        assert batches == [[0, 1], [2, 3], [4]]

    def test_keys_partition(self):
        items = [("a", 1), ("b", 2), ("a", 3), ("b", 4)]
        batches = form_batches(items, 8, key=lambda i: i[0])
        assert batches == [[("a", 1), ("a", 3)],
                           [("b", 2), ("b", 4)]]

    def test_first_arrival_order_of_keys(self):
        items = [("z", 1), ("a", 2), ("z", 3)]
        batches = form_batches(items, 8, key=lambda i: i[0])
        assert [b[0][0] for b in batches] == ["z", "a"]

    def test_order_preserved_within_key(self):
        items = [("a", i) for i in range(4)]
        batches = form_batches(items, 3, key=lambda i: i[0])
        assert [i for batch in batches for _, i in batch] == \
            [0, 1, 2, 3]

    def test_default_key_is_namespace(self):
        a = kernel_job(TINY, variant="qemu", namespace="a")
        b = kernel_job(TINY, variant="qemu", namespace="b")
        batches = form_batches([a, b, a], 8)
        assert batches == [[a, a], [b]]
        assert batch_key(a) == ("a",)

    def test_invalid_max_batch(self):
        with pytest.raises(JobError, match="max_batch"):
            form_batches([1], 0)

    def test_empty_input(self):
        assert form_batches([], 4) == []


class TestGenJobs:
    def test_deterministic(self):
        config = LoadgenConfig(jobs=16, seed=11)
        assert gen_jobs(config) == gen_jobs(config)

    def test_seed_changes_the_mix(self):
        a = gen_jobs(LoadgenConfig(jobs=16, seed=11))
        b = gen_jobs(LoadgenConfig(jobs=16, seed=12))
        assert a != b

    def test_jobs_are_valid_and_scoped(self):
        config = LoadgenConfig(jobs=24, seed=11, namespace="lg")
        jobs = gen_jobs(config)
        assert len(jobs) == 24
        kinds = set()
        for i, job in enumerate(jobs):
            job.validate()  # every generated job is well-formed
            kinds.add(job.kind)
            assert job.namespace == "lg"
            assert job.variant in config.variants
            assert job.job_id == f"lg-11-{i:04d}"
        assert kinds == {"kernel", "library", "cas"}

    def test_wire_safe(self):
        for job in gen_jobs(LoadgenConfig(jobs=8, seed=3)):
            payload = json.loads(json.dumps(job.to_json()))
            assert type(job).from_json(payload) == job


def _result(benchmark, variant, checksum=1, ok=True, **kw):
    return JobResult(job_id="", kind="kernel", benchmark=benchmark,
                     variant=variant, seed=7, ok=ok,
                     checksum=checksum, **kw)


class TestSynthesizedRows:
    def test_one_row_per_cell_first_result_wins(self):
        report = LoadgenReport(
            config=LoadgenConfig(),
            results=[_result("k", "qemu", cycles=100),
                     _result("k", "qemu", cycles=100),
                     _result("k", "risotto", cycles=80),
                     _result("j", "qemu", cycles=50)],
            latencies=[0.01] * 4, wall_seconds=1.0)
        rows = synthesized_rows(report)
        assert [(r.benchmark, r.variant) for r in rows] == \
            [("j", "qemu"), ("k", "qemu"), ("k", "risotto")]
        assert rows[1].cycles == 100

    def test_failures_excluded(self):
        report = LoadgenReport(
            config=LoadgenConfig(),
            results=[_result("k", "qemu", ok=False)],
            latencies=[0.01], wall_seconds=1.0)
        assert synthesized_rows(report) == []

    def test_extra_block_shape(self):
        report = LoadgenReport(
            config=LoadgenConfig(qps=10.0, clients=2),
            results=[_result("k", "qemu", xlat_misses=3,
                             cache_tier="cold", batch_size=2),
                     _result("k", "qemu", ok=False)],
            latencies=[0.01, 0.02], wall_seconds=0.5)
        extra = bench_extra(report)
        assert extra["jobs"] == 2
        assert extra["errors"] == 1
        assert extra["achieved_qps"] == pytest.approx(4.0)
        assert extra["cache_tiers"]["cold"] == 1
        assert extra["xlat"]["misses"] == 3
        assert extra["latency"]["count"] == 2
        assert extra["max_batch_size"] == 2


class TestEndToEnd:
    def test_replay_and_export(self, tmp_path):
        srv = ReproServer(ServeConfig(port=0, workers=0,
                                      batch_window=0.01))
        host, port = srv.start_background()
        try:
            config = LoadgenConfig(
                host=host, port=port, qps=200.0, jobs=6, seed=11,
                clients=2, namespace="", variants=("qemu",))
            report = run_loadgen(config)
        finally:
            srv.close()
        assert len(report.results) == 6
        assert report.errors == 0
        assert len(report.latencies) == 6
        assert all(lat > 0 for lat in report.latencies)
        # Results come back in job order regardless of the client
        # round-robin.
        assert [r.job_id for r in report.results] == \
            [f"lg-11-{i:04d}" for i in range(6)]

        path = write_report(report, tmp_path / "bench_serve.json")
        payload = load_bench_json(path)
        assert payload["figure"] == "serve"
        latency = payload["extra"]["latency"]
        assert set(latency) >= {"count", "p50", "p95", "p99"}
        assert latency["count"] == 6
        assert payload["extra"]["errors"] == 0
        assert payload["config"]["seed"] == 11
        assert payload["rows"]  # per-cell deterministic quantities
