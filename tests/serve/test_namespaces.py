"""Multi-tenant cache namespacing tests.

The acceptance contract: two clients submitting under distinct
namespaces simultaneously get results bit-identical to direct
``api.run_kernel`` calls, and neither tenant ever reads the other's
cache entries (a tenant's warm run hits only its own namespace; a
fresh tenant running the same bytes starts cold).  Eviction stays
safe under simultaneous writers, and ``namespace_usage`` enumerates
every tenant for ``python -m repro cache stats``.
"""

import threading

import pytest

from repro import api
from repro.core import behavior_cache
from repro.dbt import xlat_cache
from repro.dbt.xlat_cache import XlatCache
from repro.serve import (
    ReproServer,
    ServeClient,
    ServeConfig,
    kernel_job,
)
from repro.tcg.backend_arm import CompiledBlock
from repro.tcg.optimizer import OptStats
from repro.workloads.kernels import KernelSpec

TINY = KernelSpec("tiny", loads=2, stores=1, alu=2, fp=1,
                  iterations=40, threads=2, working_set=64)


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    """Both persistent caches enabled, rooted in the test tmp dir."""
    monkeypatch.setenv("REPRO_XLAT_CACHE", str(tmp_path / "xlat"))
    monkeypatch.setenv("REPRO_BEHAVIOR_CACHE", str(tmp_path / "beh"))
    monkeypatch.delenv("REPRO_XLAT_CACHE_NS", raising=False)
    monkeypatch.delenv("REPRO_BEHAVIOR_CACHE_NS", raising=False)
    monkeypatch.delenv("REPRO_XLAT_CACHE_BUDGET", raising=False)
    yield tmp_path
    xlat_cache.reset_memory()


@pytest.fixture()
def server(cache_env):
    srv = ReproServer(ServeConfig(port=0, workers=0,
                                  batch_window=0.02))
    srv.start_background()
    yield srv
    srv.close()


class TestTenantIsolation:
    def test_concurrent_tenants_bit_identical_to_direct(self, server):
        # The reference result comes from a plain api call (root
        # namespace) before any tenant has populated anything.
        direct = api.run_kernel(TINY, variant="risotto", seed=5)
        host, port = server.address
        outcomes = {}

        def tenant(name: str) -> None:
            with ServeClient(host, port) as client:
                outcomes[name] = client.submit_many(
                    [kernel_job(TINY, variant="risotto", seed=5,
                                namespace=name, job_id=f"{name}-{i}")
                     for i in range(2)])

        threads = [threading.Thread(target=tenant, args=(name,))
                   for name in ("alice", "bob")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for name in ("alice", "bob"):
            for result in outcomes[name]:
                assert result.ok
                assert result.namespace == name
                assert result.checksum == direct.checksum
                assert result.cycles == direct.result.elapsed_cycles

        # Both tenants produced disk entries under their own prefix.
        usage = xlat_cache.namespace_usage()
        assert usage["alice"]["entries"] > 0
        assert usage["bob"]["entries"] > 0

    def test_zero_cross_namespace_reads(self, server):
        host, port = server.address
        job = kernel_job(TINY, variant="risotto", seed=5,
                         namespace="alice")
        with ServeClient(host, port) as client:
            cold = client.submit(job)
            assert cold.cache_tier == "cold"
            assert cold.xlat_misses > 0

            # Warm run in the same namespace: every translation is
            # served from alice's entries.
            warm = client.submit(job)
            assert warm.xlat_misses == 0
            assert warm.cache_tier in ("memory", "disk")
            assert warm.checksum == cold.checksum

            # A fresh tenant running the same bytes starts cold: if
            # any cross-namespace read existed, this would hit.
            fresh = client.submit(kernel_job(
                TINY, variant="risotto", seed=5, namespace="carol"))
            assert fresh.xlat_misses > 0
            assert fresh.cache_tier == "cold"
            assert fresh.checksum == cold.checksum


class TestNamespaceUsage:
    def test_enumerates_root_and_tenants(self, cache_env, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            client.submit(kernel_job(TINY, variant="qemu", seed=5,
                                     namespace="alice"))
            client.submit(kernel_job(TINY, variant="qemu", seed=5))
        usage = xlat_cache.namespace_usage()
        assert set(usage) == {"", "alice"}
        assert usage[""]["entries"] > 0       # root namespace
        assert usage["alice"]["entries"] > 0
        assert usage["alice"]["bytes"] > 0

    def test_missing_store_is_empty(self, cache_env):
        assert behavior_cache.namespace_usage() == {}

    def test_shardlike_namespace_not_miscounted(self, cache_env,
                                                server):
        # A tenant named like a shard ("ab": two hex digits) must not
        # be folded into the root: contents disambiguate.
        host, port = server.address
        with ServeClient(host, port) as client:
            client.submit(kernel_job(TINY, variant="qemu", seed=5,
                                     namespace="ab"))
        usage = xlat_cache.namespace_usage()
        assert usage["ab"]["entries"] > 0
        assert usage[""]["entries"] == 0

    def test_behavior_cache_namespaces(self, cache_env, monkeypatch):
        base = behavior_cache.base_dir()
        (base / "alice").mkdir(parents=True)
        (base / "alice" / "k1.json").write_text("{}")
        (base / "k0.json").parent.mkdir(parents=True, exist_ok=True)
        (base / "k0.json").write_text("{}")
        usage = behavior_cache.namespace_usage()
        assert usage[""]["entries"] == 1
        assert usage["alice"]["entries"] == 1

    def test_api_reexports(self):
        assert api.xlat_cache_namespaces is xlat_cache.namespace_usage
        assert api.behavior_cache_namespaces \
            is behavior_cache.namespace_usage


class TestNamespaceSanitization:
    def test_env_traversal_collapses_to_root(self, monkeypatch):
        monkeypatch.setenv("REPRO_XLAT_CACHE_NS", "..")
        assert xlat_cache.namespace() == ""
        monkeypatch.setenv("REPRO_XLAT_CACHE_NS", "../../etc")
        assert xlat_cache.namespace() == "....etc"  # no separators
        monkeypatch.setenv("REPRO_BEHAVIOR_CACHE_NS", "a/b")
        assert behavior_cache.namespace() == "ab"

    def test_cache_dir_scopes_by_namespace(self, cache_env,
                                           monkeypatch):
        root = xlat_cache.cache_dir()
        monkeypatch.setenv("REPRO_XLAT_CACHE_NS", "alice")
        assert xlat_cache.cache_dir() == root / "alice"
        # The behavior cache only scopes by its *own* env var.
        assert behavior_cache.cache_dir() == behavior_cache.base_dir()
        monkeypatch.setenv("REPRO_BEHAVIOR_CACHE_NS", "alice")
        assert behavior_cache.cache_dir() == \
            behavior_cache.base_dir() / "alice"


def _entry(pc: int) -> tuple[CompiledBlock, OptStats]:
    return CompiledBlock(
        guest_pc=pc,
        asm=f"block_{pc:x}:\n" + "    nop\n" * 40 + "    ret\n",
        helper_requests=[],
        guest_insns=3,
        op_count=7,
        fence_origins=[],
    ), OptStats()


class TestConcurrentEviction:
    def test_simultaneous_writers_respect_the_budget(self, tmp_path):
        # Many threads hammer one namespace's store with a budget far
        # smaller than the combined write volume; eviction races with
        # concurrent puts and unlinks must neither raise nor leave the
        # store over budget once the dust settles.
        budget = 4096
        cache = XlatCache(tmp_path / "xlat" / "tenant",
                          max_disk_bytes=budget)
        errors: list[Exception] = []

        def writer(base: int) -> None:
            try:
                for i in range(25):
                    key = f"{base:02x}{i:02x}" + "ab" * 30
                    compiled, opt = _entry(0x400000 + base + i)
                    cache.put(key, compiled, opt)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(base,))
                   for base in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        entries, size = cache.disk_usage()
        assert size <= budget
        assert entries > 0
        # Survivors are intact entries, not torn writes.
        for _, _, path in cache._disk_entries():
            assert path.suffix == ".json"
            assert path.read_text().startswith("{")
