"""End-to-end tests for the serve front-end.

The acceptance contract: a served job returns results bit-identical
to the direct ``api`` call for every job kind, pipelined requests
form batches, failures arrive as typed error results (never dropped
connections), and the control ops (ping/stats/shutdown) work.

The servers here run with ``workers=0`` (inline execution in the
dispatcher thread): the batch/observability path is identical to the
pool path minus process fan-out, and tier-1 stays fast.  The pool
path itself is exercised by the serve benchmark and the CI smoke job.
"""

import json
import time

import pytest

from repro import api
from repro.errors import JobError
from repro.obs.metrics import get_registry
from repro.serve import (
    ReproServer,
    ServeClient,
    ServeConfig,
    cas_job,
    kernel_job,
    library_job,
)
from repro.serve.server import _run_batch
from repro.workloads.casbench import CasConfig
from repro.workloads.kernels import KernelSpec

TINY = KernelSpec("tiny", loads=2, stores=1, alu=2, fp=1,
                  iterations=40, threads=2, working_set=64)
CAS = CasConfig(threads=2, variables=2, attempts=20)


@pytest.fixture()
def server():
    srv = ReproServer(ServeConfig(port=0, workers=0,
                                  batch_window=0.02))
    srv.start_background()
    yield srv
    srv.close()


@pytest.fixture()
def client(server):
    host, port = server.address
    c = ServeClient(host, port)
    yield c
    c.close()


class TestRoundTrip:
    def test_kernel_bit_identical_to_direct_call(self, client):
        direct = api.run_kernel(TINY, variant="risotto", seed=5)
        served = client.submit(kernel_job(TINY, variant="risotto",
                                          seed=5, job_id="k1"))
        assert served.ok
        assert served.job_id == "k1"
        assert served.checksum == direct.checksum
        assert served.cycles == direct.result.elapsed_cycles
        assert served.fence_cycles == direct.result.fence_cycles
        assert served.total_cycles == direct.result.total_cycles
        assert served.exit_code == direct.result.exit_code

    def test_library_bit_identical_to_direct_call(self, client):
        args = (0x3FE0000000000000,)  # 0.5 as float64 bits
        direct = api.run_library_workload(
            "sqrt", args, 4, variant="qemu",
            library=api.build_libm())
        served = client.submit(library_job("sqrt", args, 4,
                                           variant="qemu",
                                           library="libm"))
        assert served.ok
        assert served.checksum == direct.checksum
        assert served.cycles == direct.result.elapsed_cycles

    def test_cas_bit_identical_to_direct_call(self, client):
        direct = api.run_cas_benchmark(CAS, variant="qemu")
        served = client.submit(cas_job(CAS, variant="qemu"))
        assert served.ok
        assert served.checksum == direct.checksum
        assert served.cycles == direct.result.elapsed_cycles

    def test_ping(self, client):
        assert client.ping() is True

    def test_stats(self, client):
        client.submit(cas_job(CAS, variant="qemu"))
        stats = client.stats()
        assert stats["schema"] == "repro-serve/1"
        assert stats["workers"] == 0
        assert stats["jobs_dispatched"] >= 1
        assert stats["batches_dispatched"] >= 1
        assert "repro_serve_jobs_total" in stats["metrics"]["metrics"]


class TestBatching:
    def test_pipelined_jobs_share_a_batch(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            jobs = [cas_job(CAS, variant="qemu", job_id=f"b{i}")
                    for i in range(3)]
            results = client.submit_many(jobs)
        assert [r.job_id for r in results] == ["b0", "b1", "b2"]
        assert all(r.ok for r in results)
        # All three went out before any response was read, and the
        # window is far wider than the socket hop: one batch.
        assert results[0].batch_size == 3
        assert all(r.batch_size == 3 for r in results)
        assert all(r.queue_seconds >= 0 for r in results)

    def test_namespaces_split_batches(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            jobs = [cas_job(CAS, variant="qemu", namespace="a"),
                    cas_job(CAS, variant="qemu", namespace="b"),
                    cas_job(CAS, variant="qemu", namespace="a")]
            results = client.submit_many(jobs)
        assert all(r.ok for r in results)
        # Mixed namespaces cannot share a dispatch: the "a" pair forms
        # one batch, the lone "b" its own.
        assert results[0].batch_size == 2
        assert results[2].batch_size == 2
        assert results[1].batch_size == 1
        # Namespace scoping is per-batch only: with no cache dirs
        # configured the results stay identical across tenants.
        assert results[0].checksum == results[1].checksum

    def test_results_echo_namespace(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            result = client.submit(cas_job(CAS, variant="qemu",
                                           namespace="tenant-9"))
        assert result.namespace == "tenant-9"


class TestErrors:
    def test_malformed_job_is_request_level_error(self, client):
        client._send({"op": "submit",
                      "job": {"schema": "repro-serve/1",
                              "kind": "kernel", "benchmark": "x",
                              "variant": "qemu"}})
        response = client._recv()
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"
        # The connection survives the rejection.
        assert client.ping()

    def test_submit_raises_typed_error_for_bad_job(self, client):
        with pytest.raises(JobError, match="bad-request"):
            client._send({"op": "submit", "job": {"schema": "nope"}})
            client._result_of(client._recv())

    def test_runtime_failure_is_a_typed_result(self, client):
        result = client.submit(library_job("sqrt", (7,), 2,
                                           variant="qemu",
                                           library="libzzz"))
        assert not result.ok
        assert result.error.code == "bad-request"
        assert "libzzz" in result.error.message

    def test_unknown_op(self, client):
        client._send({"op": "dance"})
        response = client._recv()
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"
        assert "dance" in response["error"]["message"]

    def test_unparseable_line(self, client):
        client._wfile.write(b"{not json}\n")
        client._wfile.flush()
        response = client._recv()
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"


class TestWorkerEntryPoint:
    def test_run_batch_is_pure_wire(self):
        payloads = [cas_job(CAS, variant="qemu",
                            job_id="w1").to_json(),
                    {"kind": "kernel", "benchmark": "?",
                     "variant": "?"}]  # no schema: rejected
        results = _run_batch(payloads)
        assert json.loads(json.dumps(results)) == results
        assert results[0]["ok"] is True
        assert results[0]["job_id"] == "w1"
        assert results[1]["ok"] is False
        assert results[1]["error"]["code"] == "bad-request"


class TestObservability:
    def test_per_request_metrics_flow(self, client):
        before = _serve_jobs_count()
        client.submit(cas_job(CAS, variant="qemu"))
        client.submit(library_job("sqrt", (7,), 2, variant="qemu",
                                  library="libzzz"))  # typed failure
        snapshot = get_registry().snapshot()["metrics"]
        assert _serve_jobs_count() >= before + 2
        for name in ("repro_serve_queue_seconds",
                     "repro_serve_batch_size",
                     "repro_serve_exec_seconds"):
            assert snapshot[name]["kind"] == "histogram"
        errors = snapshot["repro_serve_errors_total"]["series"]
        assert any("bad-request" in key for key in errors)


def _serve_jobs_count() -> int:
    snapshot = get_registry().snapshot()["metrics"]
    metric = snapshot.get("repro_serve_jobs_total")
    if metric is None:
        return 0
    return sum(metric["series"].values())


class TestShutdown:
    def test_shutdown_op_stops_the_server(self):
        srv = ReproServer(ServeConfig(port=0, workers=0))
        host, port = srv.start_background()
        with ServeClient(host, port) as client:
            result = client.submit(cas_job(CAS, variant="qemu"))
            assert result.ok
            client.shutdown()
        deadline = time.time() + 10
        while srv._serve_thread.is_alive() and time.time() < deadline:
            time.sleep(0.02)
        assert not srv._serve_thread.is_alive()
        with pytest.raises(OSError):
            ServeClient(host, port, timeout=2.0)
