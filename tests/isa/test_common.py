"""Encoding machinery: round-trips and error paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AssemblerError, DecodeError
from repro.isa.common import (
    Imm,
    Insn,
    InsnCoder,
    Label,
    Mem,
    Reg,
    to_signed,
    to_unsigned,
)

CODER = InsnCoder(
    "test", {"foo": 0x01, "bar": 0x02}, {"r0": 0, "r1": 1},
    allow_lock=True)


class TestCoderBasics:
    def test_no_operand_roundtrip(self):
        insn = Insn("foo")
        decoded, size = CODER.decode(CODER.encode(insn))
        assert decoded == insn and size == 2

    def test_reg_imm_mem_roundtrip(self):
        insn = Insn("bar", (Reg("r0"), Imm(-5),
                            Mem(base="r1", offset=-16, index="r0",
                                scale=8)))
        data = CODER.encode(insn)
        decoded, size = CODER.decode(data)
        assert decoded == insn and size == len(data)

    def test_lock_prefix_roundtrip(self):
        insn = Insn("foo", (Reg("r1"),), lock=True)
        decoded, _ = CODER.decode(CODER.encode(insn))
        assert decoded.lock

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            CODER.encode(Insn("baz"))

    def test_unknown_register_rejected(self):
        with pytest.raises(AssemblerError):
            CODER.encode(Insn("foo", (Reg("r9"),)))

    def test_unresolved_label_rejected(self):
        with pytest.raises(AssemblerError):
            CODER.encode(Insn("foo", (Label("x"),)))

    def test_bad_scale_rejected(self):
        with pytest.raises(AssemblerError):
            CODER.encode(Insn("foo", (Mem(base="r0", scale=3),)))

    def test_unknown_opcode_rejected(self):
        with pytest.raises(DecodeError):
            CODER.decode(bytes([0x77, 0]))

    def test_decode_past_end_rejected(self):
        with pytest.raises(DecodeError):
            CODER.decode(b"", 0)

    def test_lock_without_support_rejected(self):
        plain = InsnCoder("plain", {"foo": 1}, {"r0": 0})
        with pytest.raises(AssemblerError):
            plain.encode(Insn("foo", lock=True))

    def test_duplicate_opcode_table_rejected(self):
        with pytest.raises(AssemblerError):
            InsnCoder("dup", {"a": 1, "b": 1}, {"r0": 0})

    def test_disassemble_stream(self):
        stream = CODER.encode(Insn("foo")) + CODER.encode(
            Insn("bar", (Imm(3),)))
        insns = CODER.disassemble(stream)
        assert [i.mnemonic for i in insns] == ["foo", "bar"]


class TestSignHelpers:
    @given(st.integers(0, 2**64 - 1))
    def test_signed_unsigned_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value

    def test_signed_interpretation(self):
        assert to_signed(2**64 - 1) == -1
        assert to_signed(2**63) == -(2**63)
        assert to_signed(5) == 5


imm_strategy = st.integers(-(2**63), 2**63 - 1).map(Imm)
reg_strategy = st.sampled_from(["r0", "r1"]).map(Reg)
mem_strategy = st.builds(
    Mem,
    base=st.sampled_from(["r0", "r1", None]),
    offset=st.integers(-(2**31), 2**31 - 1),
    index=st.sampled_from(["r0", None]),
    scale=st.sampled_from([1, 2, 4, 8]),
)
operand_strategy = st.one_of(imm_strategy, reg_strategy, mem_strategy)


class TestRoundtripProperty:
    @given(st.lists(operand_strategy, max_size=4), st.booleans())
    @settings(max_examples=200)
    def test_any_insn_roundtrips(self, operands, lock):
        insn = Insn("bar", tuple(operands), lock=lock)
        decoded, size = CODER.decode(CODER.encode(insn))
        assert decoded == insn
        assert size == len(CODER.encode(insn))
