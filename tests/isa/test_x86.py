"""x86 assembler + reference interpreter tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AssemblerError, GuestFault
from repro.isa.common import Imm, Insn, Mem, Reg
from repro.isa.x86 import (
    CODER,
    CpuState,
    X86Interpreter,
    assemble,
    bits_to_double,
    double_to_bits,
    evaluate_condition,
    parse_operand,
)


class DictMemory:
    """Minimal memory for interpreter tests."""

    def __init__(self, code=b"", base=0x1000):
        self.words = {}
        self.code = code
        self.base = base

    def load_word(self, addr):
        return self.words.get(addr, 0)

    def store_word(self, addr, value):
        self.words[addr] = value & ((1 << 64) - 1)

    def read_bytes(self, addr, count):
        off = addr - self.base
        return self.code[off:off + count]


def run(source, regs=None, mem=None, max_steps=100_000):
    asm = assemble(source, base=0x1000)
    memory = DictMemory(asm.code)
    if mem:
        memory.words.update(mem)
    state = CpuState()
    state.rip = 0x1000
    state.regs["rsp"] = 0x7FFF0
    if regs:
        state.regs.update(regs)
    X86Interpreter(memory).run(state, max_steps=max_steps)
    return state, memory


class TestAssembler:
    def test_operand_parsing(self):
        assert parse_operand("rax") == Reg("rax")
        assert parse_operand("42") == Imm(42)
        assert parse_operand("-0x10") == Imm(-16)
        assert parse_operand("[rbx]") == Mem(base="rbx")
        assert parse_operand("[rbx + 8]") == Mem(base="rbx", offset=8)
        assert parse_operand("[rbx - 8]") == Mem(base="rbx", offset=-8)
        assert parse_operand("[rbx + rcx*8 + 16]") == \
            Mem(base="rbx", offset=16, index="rcx", scale=8)

    def test_label_resolution(self):
        asm = assemble("start:\n  jmp start")
        assert asm.insns[0].operands[0] == Imm(asm.base)

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("jmp nowhere")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\na:\n nop")

    def test_lock_prefix_parsed(self):
        asm = assemble("lock cmpxchg [rbx], rcx")
        assert asm.insns[0].lock

    def test_comments_and_blank_lines(self):
        asm = assemble("; header\n\n  nop ; trailing\n")
        assert len(asm.insns) == 1

    def test_external_labels(self):
        asm = assemble("call sin", external_labels={"sin": 0x9000})
        assert asm.insns[0].operands[0] == Imm(0x9000)

    def test_addresses_parallel_insns(self):
        asm = assemble("nop\nnop\nhlt")
        assert len(asm.addresses) == 3
        assert asm.addresses[0] == asm.base

    def test_roundtrip_through_coder(self):
        asm = assemble("""
            mov rax, [rbx + 8]
            add rax, 5
            lock xadd [rcx], rax
            hlt
        """)
        assert CODER.disassemble(asm.code) == asm.insns


class TestInterpreter:
    def test_arithmetic_loop(self):
        state, _ = run("""
            mov rax, 0
            mov rcx, 100
        loop:
            add rax, rcx
            dec rcx
            jne loop
            hlt
        """)
        assert state.regs["rax"] == 5050

    def test_memory_addressing(self):
        state, memory = run("""
            mov rbx, 0x8000
            mov rcx, 3
            mov rax, 7
            mov [rbx + rcx*8 + 16], rax
            mov rdx, [rbx + 40]
            hlt
        """)
        assert memory.words[0x8000 + 24 + 16] == 7
        assert state.regs["rdx"] == 7

    def test_lea(self):
        state, _ = run("""
            mov rbx, 0x100
            mov rcx, 4
            lea rax, [rbx + rcx*8 + 2]
            hlt
        """)
        assert state.regs["rax"] == 0x100 + 32 + 2

    def test_stack_and_calls(self):
        state, _ = run("""
            mov rdi, 5
            call double_it
            hlt
        double_it:
            mov rax, rdi
            add rax, rax
            ret
        """)
        assert state.regs["rax"] == 10
        assert state.regs["rsp"] == 0x7FFF0  # balanced

    def test_push_pop(self):
        state, _ = run("""
            mov rax, 11
            push rax
            mov rax, 22
            pop rbx
            hlt
        """)
        assert state.regs["rbx"] == 11

    def test_signed_conditions(self):
        state, _ = run("""
            mov rax, -5
            cmp rax, 3
            jl neg_path
            mov rbx, 0
            hlt
        neg_path:
            mov rbx, 1
            hlt
        """)
        assert state.regs["rbx"] == 1

    def test_unsigned_conditions(self):
        # -5 as unsigned is huge, so JA (above) is taken.
        state, _ = run("""
            mov rax, -5
            cmp rax, 3
            ja big
            mov rbx, 0
            hlt
        big:
            mov rbx, 1
            hlt
        """)
        assert state.regs["rbx"] == 1

    def test_cmpxchg_success_and_failure(self):
        state, memory = run("""
            mov rbx, 0x8000
            mov rax, 0
            mov rcx, 7
            lock cmpxchg [rbx], rcx
            je ok
            hlt
        ok:
            mov rax, 0
            mov rcx, 9
            lock cmpxchg [rbx], rcx   ; fails: memory holds 7
            je bad
            mov rdx, rax              ; rax loaded with current value
            hlt
        bad:
            mov rdx, 999
            hlt
        """)
        assert memory.words[0x8000] == 7
        assert state.regs["rdx"] == 7

    def test_xadd(self):
        state, memory = run("""
            mov rbx, 0x8000
            mov rax, 40
            mov [rbx], rax
            mov rcx, 2
            lock xadd [rbx], rcx
            hlt
        """)
        assert memory.words[0x8000] == 42
        assert state.regs["rcx"] == 40

    def test_xchg(self):
        state, memory = run("""
            mov rbx, 0x8000
            mov rax, 1
            mov [rbx], rax
            mov rcx, 2
            xchg [rbx], rcx
            hlt
        """)
        assert memory.words[0x8000] == 2
        assert state.regs["rcx"] == 1

    def test_div(self):
        state, _ = run("""
            mov rax, 17
            mov rcx, 5
            div rcx
            hlt
        """)
        assert state.regs["rax"] == 3
        assert state.regs["rdx"] == 2

    def test_div_by_zero_faults(self):
        with pytest.raises(GuestFault):
            run("mov rcx, 0\n div rcx\n hlt")

    def test_shift_ops(self):
        state, _ = run("""
            mov rax, 1
            shl rax, 6
            mov rbx, rax
            shr rbx, 3
            hlt
        """)
        assert state.regs["rax"] == 64
        assert state.regs["rbx"] == 8

    def test_float_ops(self):
        state, _ = run(f"""
            mov rax, {double_to_bits(1.5)}
            mov rbx, {double_to_bits(2.25)}
            fadd rax, rbx
            fmul rax, rbx
            hlt
        """)
        assert bits_to_double(state.regs["rax"]) == pytest.approx(
            (1.5 + 2.25) * 2.25)

    def test_fsqrt(self):
        state, _ = run(f"""
            mov rbx, {double_to_bits(9.0)}
            fsqrt rax, rbx
            hlt
        """)
        assert bits_to_double(state.regs["rax"]) == pytest.approx(3.0)

    def test_runaway_guarded(self):
        with pytest.raises(GuestFault):
            run("spin:\n jmp spin", max_steps=1000)

    def test_unknown_condition_rejected(self):
        with pytest.raises(GuestFault):
            evaluate_condition("zz", {"zf": False, "sf": False,
                                      "cf": False, "of": False})


class TestFlagProperties:
    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    @settings(max_examples=150)
    def test_cmp_condition_consistency(self, a, b):
        """After cmp a, b the conditions must match Python's compare
        in both signedness interpretations."""
        source = f"""
            mov rax, {a}
            mov rbx, {b}
            cmp rax, rbx
            hlt
        """
        state, _ = run(source)
        flags = state.flags
        signed_a = a - 2**64 if a >= 2**63 else a
        signed_b = b - 2**64 if b >= 2**63 else b
        assert evaluate_condition("e", flags) == (a == b)
        assert evaluate_condition("b", flags) == (a < b)
        assert evaluate_condition("ae", flags) == (a >= b)
        assert evaluate_condition("l", flags) == (signed_a < signed_b)
        assert evaluate_condition("ge", flags) == (signed_a >= signed_b)
        assert evaluate_condition("g", flags) == (signed_a > signed_b)
        assert evaluate_condition("le", flags) == (signed_a <= signed_b)
