#!/usr/bin/env python3
"""The dynamic host library linker end to end (Section 6.2).

Run:  python examples/host_linker.py

Builds a guest application that hashes a buffer through an imported
``sha256`` and prices an option with ``exp``/``log``, then runs it:

* under ``tcg-ver`` — the guest libcrypto/libm bodies are translated;
* under ``risotto`` — the linker reads the IDL, scans ``.dynsym``,
  captures the PLT entries and calls the native host libraries.

Same results, very different cycle counts.
"""

from repro.dbt import DBTEngine, RISOTTO, TCG_VER
from repro.loader import HostLinker, build_binary
from repro.workloads import standard_libraries

BUFFER = 0x0220_0000
BUFFER_BYTES = 2048

GUEST_APP = f"""
main:
    ; fill the buffer with data
    mov rbx, {BUFFER}
    mov rcx, {BUFFER_BYTES // 8}
fill:
    mov rdx, rcx
    imul rdx, 2654435761
    mov [rbx], rdx
    add rbx, 8
    dec rcx
    jne fill

    ; digest it via the shared library
    mov rdi, {BUFFER}
    mov rsi, {BUFFER_BYTES}
    call sha256
    mov r15, rax

    ; a couple of math library calls
    mov rdi, 4602678819172646912   ; bits(0.5)
    call exp
    xor r15, rax
    mov rdi, 4609434218613702656   ; bits(1.5)
    call log
    xor r15, rax

    mov rdi, r15
    mov rax, 1                     ; write_int(checksum)
    syscall
    mov rdi, 0
    mov rax, 60
    syscall
"""


def run(variant_config, link: bool):
    library = standard_libraries()
    binary = build_binary(
        GUEST_APP,
        guest_libs={
            name: library[name].guest_asm
            for name in ("sha256", "exp", "log")
        },
    )
    engine = DBTEngine(variant_config, n_cores=1)
    binary.load_into(engine.machine.memory)
    report = None
    if link:
        linker = HostLinker(library, library.idl_source())
        report = linker.link(binary, engine.runtime)
    result = engine.run(binary.entry)
    return result, report


def main() -> None:
    print("guest imports: sha256, exp, log (via PLT)\n")

    translated, _ = run(TCG_VER, link=False)
    linked, report = run(RISOTTO, link=True)

    print(f"linker resolution: {report}")
    print()
    print(f"{'setup':28s}{'cycles':>10s}{'PLT hits':>10s}  checksum")
    print(f"{'tcg-ver (translated libs)':28s}"
          f"{translated.elapsed_cycles:10d}"
          f"{translated.stats.plt_calls:10d}  {translated.output[0]:#x}")
    print(f"{'risotto (host linker)':28s}{linked.elapsed_cycles:10d}"
          f"{linked.stats.plt_calls:10d}  {linked.output[0]:#x}")

    assert translated.output == linked.output, "results diverged!"
    speedup = translated.elapsed_cycles / linked.elapsed_cycles
    print(f"\nidentical results; host linking is {speedup:.1f}x faster "
          f"on this app")


if __name__ == "__main__":
    main()
