#!/usr/bin/env python3
"""Verify the paper's mapping schemes with the model checker.

Run:  python examples/verify_mappings.py

Walks through Sections 3 and 5 interactively:

1. The MP litmus test and why translation needs fences at all.
2. QEMU's translation bugs: MPQ (casal helper), SBQ (exclusives
   helper), and the FMR optimization bug.
3. The Arm-Cats model bug (SBAL) and its accepted fix.
4. Risotto's verified mappings passing the whole corpus, and the
   minimality of every fence.
"""

from repro.core import ARM, ARM_ORIGINAL, TCG, X86, Fence
from repro.core import litmus_library as L
from repro.core import mappings as M
from repro.core.enumerate import behaviors
from repro.core.litmus_library import outcome, shows
from repro.core.transforms import eliminate_raw
from repro.core.verifier import (
    ablate,
    check_corpus,
    check_mapping,
    check_translation,
    drop_fences,
)


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 66 - len(text)))


def main() -> None:
    banner("1. Why fences: MP on x86 vs Arm (Section 2.1)")
    weak = outcome(T1_a=1, T1_b=0)
    print(L.MP.program.pretty())
    print(f"  weak outcome a=1,b=0 on x86:       "
          f"{shows(behaviors(L.MP.program, X86), weak)}")
    unfenced = M.nofences_x86_to_arm.apply(L.MP.program)
    print(f"  after fence-free translation to Arm: "
          f"{shows(behaviors(unfenced, ARM), weak)}  <- bug!")
    fenced = M.risotto_x86_to_arm_rmw1.apply(L.MP.program)
    print(f"  after Risotto's verified translation: "
          f"{shows(behaviors(fenced, ARM), weak)}")

    banner("2. QEMU's RMW translation bugs (Section 3.2)")
    for test, mapping in ((L.MPQ, M.qemu_x86_to_arm_gcc10),
                          (L.SBQ, M.qemu_x86_to_arm_gcc9)):
        verdict = check_mapping(test, mapping, X86, ARM)
        print(f"  {test.name:5s} under {mapping.name}: "
              f"{'OK' if verdict.ok else 'BROKEN'}")
        for bad in verdict.violated_outcomes:
            print(f"        admits forbidden outcome "
                  f"{dict(sorted(bad))}")

    banner("2b. The FMR transformation bug")
    transformed = eliminate_raw(L.FMR_SOURCE, 0, 2)
    verdict = check_translation(L.FMR_SOURCE, transformed, TCG, TCG,
                                mapping_name="RAW-elimination")
    print(f"  RAW elimination across Fmr: "
          f"{'OK' if verdict.ok else 'BROKEN (as the paper reports)'}")

    banner("3. The Arm-Cats model bug and its fix (Section 3.3)")
    for model in (ARM_ORIGINAL, ARM):
        verdict = check_mapping(L.SBAL, M.armcats_intended, X86, model)
        print(f"  SBAL under {model.name:18s}: "
              f"{'OK' if verdict.ok else 'BROKEN'}")
    print("  (the strengthened bob was accepted upstream, "
          "herdtools7 #322)")

    banner("4. Risotto's mappings verified over the corpus (Thm 1)")
    for mapping, model in ((M.risotto_x86_to_tcg, TCG),
                           (M.risotto_x86_to_arm_rmw1, ARM),
                           (M.risotto_x86_to_arm_rmw2, ARM)):
        report = check_corpus(L.X86_CORPUS, mapping, X86, model)
        status = "all pass" if report.ok else "FAILED"
        print(f"  {mapping.name:44s} {len(report.verdicts)} tests: "
              f"{status}")

    banner("5. Minimality: drop any fence and something breaks")
    for label, kind in (("trailing Frm", Fence.FRM),
                        ("leading Fww", Fence.FWW)):
        weakened = drop_fences(M.risotto_x86_to_tcg,
                               frozenset({kind}), label)
        result = ablate(L.X86_CORPUS, weakened, X86, TCG, label)
        print(f"  without the {label:13s}: breaks "
              f"{', '.join(result.broken_tests)}")


if __name__ == "__main__":
    main()
