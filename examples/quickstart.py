#!/usr/bin/env python3
"""Quickstart: translate and run an x86 guest program on the simulated
Arm host, under every DBT variant.

Run:  python examples/quickstart.py

What it shows:

1. Assemble a small multi-threaded guest program (x86).
2. Run it under QEMU's original mapping scheme, the incorrect
   no-fences oracle, the verified tcg-ver scheme, and full Risotto.
3. Compare cycles and the time spent in memory fences — the paper's
   core performance story in one page.
"""

from repro.dbt import DBTEngine, VARIANTS
from repro.isa.x86 import assemble

GUEST_PROGRAM = """
; Two threads pass a message through shared memory:
; the worker publishes data then a flag; main spins on the flag and
; reads the data — the MP idiom whose ordering the DBT must preserve.

main:
    mov rax, 1000          ; spawn(worker, arg=7)
    mov rdi, worker
    mov rsi, 7
    syscall
    mov r15, rax           ; remember worker's tid

wait_flag:
    mov rbx, 0x9008        ; flag address
    mov rcx, [rbx]
    cmp rcx, 1
    jne wait_flag

    mov rbx, 0x9000        ; data address
    mov rdi, [rbx]         ; must read 4242, never 0
    mov rax, 1             ; write_int(data)
    syscall

    mov rdi, r15
    mov rax, 1001          ; join(worker)
    syscall
    mov rdi, 0
    mov rax, 60            ; exit(0)
    syscall

worker:
    ; rdi = argument (7)
    mov rax, rdi
    mov rcx, 600
accumulate:
    add rax, rcx           ; some real work
    dec rcx
    jne accumulate
    mov rbx, 0x9000
    mov rcx, 4242
    mov [rbx], rcx         ; publish data...
    mov rbx, 0x9008
    mov rcx, 1
    mov [rbx], rcx         ; ...then the flag (ordering matters!)
    ret
"""


def main() -> None:
    assembly = assemble(GUEST_PROGRAM, base=0x400000)
    print(f"guest binary: {len(assembly.code)} bytes, "
          f"{len(assembly.insns)} instructions\n")

    print(f"{'variant':12s} {'cycles':>9s} {'fences':>8s} "
          f"{'fence%':>7s} {'blocks':>7s}  output")
    for name, config in VARIANTS.items():
        engine = DBTEngine(config, n_cores=2)
        engine.load_image(assembly.base, assembly.code)
        result = engine.run(assembly.label("main"))
        assert result.output == [4242], \
            f"{name}: message passing broke! got {result.output}"
        share = result.fence_share
        print(f"{name:12s} {result.elapsed_cycles:9d} "
              f"{result.fence_cycles:8d} {100 * share:6.1f}% "
              f"{result.stats.blocks_translated:7d}  {result.output}")

    print("\nAll variants deliver the message; they differ in what the "
          "ordering costs.")
    print("(On this simulated host the no-fences variant happens to "
          "work here — the")
    print("axiomatic checker in repro.core is what proves it is "
          "incorrect in general.)")


if __name__ == "__main__":
    main()
