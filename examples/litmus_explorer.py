#!/usr/bin/env python3
"""Explore litmus tests with both engines: axiomatic and operational.

Run:  python examples/litmus_explorer.py [test-name]

For each litmus test this prints the behaviours allowed by the
axiomatic models at each translation level (x86 source, Risotto-mapped
Arm, fence-free Arm) and then *stress-runs* the Arm versions on the
store-buffer machine to show which weak outcomes actually materialize.
"""

import sys

from repro.core import ARM, X86
from repro.core import litmus_library as L
from repro.core import mappings as M
from repro.core.enumerate import behaviors
from repro.machine.litmus import run_stress


def show_behaviors(title: str, behs: frozenset) -> None:
    print(f"  {title} ({len(behs)} behaviours):")
    for beh in sorted(behs, key=sorted):
        regs = {k: v for k, v in sorted(beh) if k.startswith("T")}
        mem = {k: v for k, v in sorted(beh) if not k.startswith("T")}
        print(f"    regs={regs} mem={mem}")


def explore(test: L.LitmusTest) -> None:
    print("=" * 70)
    print(test.program.pretty())
    if test.description:
        print(f"  // {test.description}")
    print()

    source = behaviors(test.program, X86)
    show_behaviors("x86 source (x86-TSO model)", source)

    mapped = M.risotto_x86_to_arm_rmw1.apply(test.program)
    arm_behs = behaviors(mapped, ARM)
    extra = arm_behs - source
    print(f"\n  risotto-mapped Arm: {len(arm_behs)} behaviours, "
          f"{len(extra)} beyond the source "
          f"{'<- TRANSLATION BUG' if extra else '(Theorem 1 holds)'}")

    unfenced = M.nofences_x86_to_arm.apply(test.program)
    weak = behaviors(unfenced, ARM) - source
    print(f"  fence-free Arm: {len(weak)} weak behaviours beyond x86")

    print("\n  stress-running on the store-buffer machine "
          "(96 iterations x 6 seeds):")
    observed_ok = run_stress(mapped, iterations=96, seeds=range(6))
    print(f"    risotto-mapped: {len(observed_ok)} distinct outcomes, "
          f"all allowed: {observed_ok <= arm_behs}")
    observed_weak = run_stress(unfenced, iterations=96, seeds=range(6))
    newly_weak = {
        o for o in observed_weak
        if o not in source and o in behaviors(unfenced, ARM)
    }
    print(f"    fence-free:     {len(observed_weak)} distinct "
          f"outcomes, {len(newly_weak)} weak ones observed live")


def main() -> None:
    if len(sys.argv) > 1:
        names = sys.argv[1:]
        tests = [L.ALL_TESTS[name] for name in names]
    else:
        tests = [L.MP, L.SB, L.SB_MFENCE, L.MP_RMW]
    for test in tests:
        explore(test)
        print()


if __name__ == "__main__":
    main()
